//! The unified technique registry.
//!
//! The paper compares join techniques from two categories the original
//! framework keeps behind different interfaces: *index nested loop*
//! techniques ([`SpatialIndex`]: build per tick, probe per query) and
//! *specialized* set-at-a-time joins ([`BatchJoin`]: the whole tick's
//! query set in one call). [`Technique`] collapses that split behind one
//! `run` entry point, and [`TechniqueSpec`] + [`registry`] make the full
//! line-up a single source of truth: benchmark binaries, examples, and the
//! cross-technique agreement tests all iterate the registry instead of
//! maintaining their own lists.
//!
//! Spec strings are `family` or `family:variant` (e.g. `"grid:inline"`,
//! `"rtree:str"`, `"sweep"`); [`TechniqueSpec::parse`] accepts them
//! case-sensitively, and [`TechniqueSpec::name`] returns the canonical
//! form, so specs round-trip.

use std::fmt;

use sj_base::batch::BatchJoin;
use sj_base::driver::{run_batch_join, run_join, DriverConfig, RunStats, Workload};
use sj_base::index::{ScanIndex, SpatialIndex};
use sj_binsearch::{BinarySearchJoin, VecSearchJoin};
use sj_crtree::CRTree;
use sj_grid::{IncrementalGrid, SimpleGrid, Stage};
use sj_kdtrie::LinearKdTrie;
use sj_quadtree::QuadTree;
use sj_rtree::{DynRTree, RTree};
use sj_sweep::PlaneSweepJoin;

/// A ready-to-run join technique from either of the paper's categories.
///
/// Obtained from [`TechniqueSpec::build`] (or assembled by hand around any
/// custom [`SpatialIndex`]/[`BatchJoin`] implementation, e.g. a grid with
/// swept parameters). [`Technique::run`] drives it through a workload with
/// the category-appropriate driver; results are directly comparable
/// because both drivers share one tick loop.
pub enum Technique {
    /// Index nested loop: rebuild per tick, one probe per query.
    Index(Box<dyn SpatialIndex>),
    /// Specialized set-at-a-time join: no index, whole query set at once.
    Batch(Box<dyn BatchJoin>),
}

impl Technique {
    /// The technique's display name (e.g. "R-Tree", "Plane Sweep").
    pub fn name(&self) -> &str {
        match self {
            Technique::Index(i) => i.name(),
            Technique::Batch(j) => j.name(),
        }
    }

    /// Drive this technique through `workload` for `cfg.ticks` measured
    /// ticks, dispatching to the category-appropriate driver.
    pub fn run<W: Workload + ?Sized>(&mut self, workload: &mut W, cfg: DriverConfig) -> RunStats {
        match self {
            Technique::Index(i) => run_join(workload, i.as_mut(), cfg),
            Technique::Batch(j) => run_batch_join(workload, j.as_mut(), cfg),
        }
    }

    /// Parse `spec` and construct the technique for a data space of side
    /// `space_side` in one step.
    pub fn from_spec(spec: &str, space_side: f32) -> Result<Technique, ParseSpecError> {
        Ok(TechniqueSpec::parse(spec)?.build(space_side))
    }

    /// The contained index, if this is an index technique.
    pub fn as_index(&self) -> Option<&dyn SpatialIndex> {
        match self {
            Technique::Index(i) => Some(i.as_ref()),
            Technique::Batch(_) => None,
        }
    }

    /// Mutable access to the contained index, if any.
    pub fn as_index_mut(&mut self) -> Option<&mut dyn SpatialIndex> {
        match self {
            Technique::Index(i) => Some(i.as_mut()),
            Technique::Batch(_) => None,
        }
    }
}

impl fmt::Debug for Technique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self {
            Technique::Index(_) => "Index",
            Technique::Batch(_) => "Batch",
        };
        write!(f, "Technique::{}({:?})", kind, self.name())
    }
}

/// Error from [`TechniqueSpec::parse`]: the offending spec plus the full
/// list of canonical spec strings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseSpecError {
    pub spec: String,
}

impl fmt::Display for ParseSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown technique spec {:?} (expected one of: ",
            self.spec
        )?;
        for (i, s) in registry().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", s.name())?;
        }
        write!(f, ")")
    }
}

impl std::error::Error for ParseSpecError {}

/// A parseable, nameable handle for every technique in the workspace,
/// with its paper-tuned constructor. `Copy`, so lists of specs are cheap
/// to filter and re-instantiate (a fresh technique per run keeps
/// measurements independent).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TechniqueSpec {
    /// Ground-truth full scan (`scan`) — quadratic, for validation only.
    Scan,
    /// Binary Search baseline (`binsearch`), paper §2.2.
    BinarySearch,
    /// Binary Search over sorted SoA columns with the SSE2 filter
    /// (`binsearch:simd`) — this repository's extension.
    VecSearch,
    /// Simple Grid at one of the paper's cumulative improvement stages
    /// (`grid:original` … `grid:inline`).
    Grid(Stage),
    /// Incrementally maintained u-Grid (`grid:incremental`), reference [8].
    GridIncremental,
    /// STR-bulk-loaded static R-tree (`rtree:str`).
    RTreeStr,
    /// Incremental Guttman R-tree (`rtree:dyn`) — extension.
    RTreeDyn,
    /// Cache-conscious CR-tree (`crtree`).
    CRTree,
    /// Bucket PR-quadtree (`quadtree`) — extension.
    QuadTree,
    /// Linearized KD-trie (`kdtrie`).
    KdTrie,
    /// Index-free forward plane sweep (`sweep`) — the specialized join
    /// category; builds a [`Technique::Batch`].
    Sweep,
}

/// Every technique in the workspace, in presentation order: the ground
/// truth, the paper's Figure 2 five (with the grid at each cumulative
/// stage), then the extensions. This is the single source of truth the
/// harness binaries and cross-technique tests iterate.
pub fn registry() -> Vec<TechniqueSpec> {
    let mut v = vec![
        TechniqueSpec::Scan,
        TechniqueSpec::BinarySearch,
        TechniqueSpec::RTreeStr,
        TechniqueSpec::CRTree,
        TechniqueSpec::KdTrie,
    ];
    v.extend(Stage::ALL.iter().map(|&s| TechniqueSpec::Grid(s)));
    v.extend([
        TechniqueSpec::GridIncremental,
        TechniqueSpec::RTreeDyn,
        TechniqueSpec::QuadTree,
        TechniqueSpec::VecSearch,
        TechniqueSpec::Sweep,
    ]);
    v
}

impl TechniqueSpec {
    /// Canonical spec string; [`TechniqueSpec::parse`] inverts it.
    pub const fn name(self) -> &'static str {
        match self {
            TechniqueSpec::Scan => "scan",
            TechniqueSpec::BinarySearch => "binsearch",
            TechniqueSpec::VecSearch => "binsearch:simd",
            TechniqueSpec::Grid(Stage::Original) => "grid:original",
            TechniqueSpec::Grid(Stage::Restructured) => "grid:restructured",
            TechniqueSpec::Grid(Stage::Querying) => "grid:querying",
            TechniqueSpec::Grid(Stage::BsTuned) => "grid:bs-tuned",
            TechniqueSpec::Grid(Stage::CpsTuned) => "grid:inline",
            TechniqueSpec::GridIncremental => "grid:incremental",
            TechniqueSpec::RTreeStr => "rtree:str",
            TechniqueSpec::RTreeDyn => "rtree:dyn",
            TechniqueSpec::CRTree => "crtree",
            TechniqueSpec::QuadTree => "quadtree",
            TechniqueSpec::KdTrie => "kdtrie",
            TechniqueSpec::Sweep => "sweep",
        }
    }

    /// Display label matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            TechniqueSpec::Scan => "Full Scan",
            TechniqueSpec::BinarySearch => "Binary Search",
            TechniqueSpec::VecSearch => "Binary Search (vectorized)",
            TechniqueSpec::Grid(Stage::Original) => "Simple Grid",
            TechniqueSpec::Grid(stage) => stage.label(),
            TechniqueSpec::GridIncremental => "Simple Grid (incremental)",
            TechniqueSpec::RTreeStr => "R-Tree",
            TechniqueSpec::RTreeDyn => "R-Tree (incremental)",
            TechniqueSpec::CRTree => "CR-Tree",
            TechniqueSpec::QuadTree => "Quadtree",
            TechniqueSpec::KdTrie => "Linearized KD-Trie",
            TechniqueSpec::Sweep => "Plane Sweep",
        }
    }

    /// Parse a spec string (canonical names plus the aliases `grid` →
    /// `grid:inline`, `rtree` → `rtree:str`, and `binsearch:vec` →
    /// `binsearch:simd`).
    pub fn parse(spec: &str) -> Result<TechniqueSpec, ParseSpecError> {
        let s = match spec {
            "scan" => TechniqueSpec::Scan,
            "binsearch" => TechniqueSpec::BinarySearch,
            "binsearch:simd" | "binsearch:vec" => TechniqueSpec::VecSearch,
            "grid:original" => TechniqueSpec::Grid(Stage::Original),
            "grid:restructured" => TechniqueSpec::Grid(Stage::Restructured),
            "grid:querying" => TechniqueSpec::Grid(Stage::Querying),
            "grid:bs-tuned" => TechniqueSpec::Grid(Stage::BsTuned),
            "grid:inline" | "grid" => TechniqueSpec::Grid(Stage::CpsTuned),
            "grid:incremental" => TechniqueSpec::GridIncremental,
            "rtree:str" | "rtree" => TechniqueSpec::RTreeStr,
            "rtree:dyn" => TechniqueSpec::RTreeDyn,
            "crtree" => TechniqueSpec::CRTree,
            "quadtree" => TechniqueSpec::QuadTree,
            "kdtrie" => TechniqueSpec::KdTrie,
            "sweep" => TechniqueSpec::Sweep,
            _ => {
                return Err(ParseSpecError {
                    spec: spec.to_string(),
                })
            }
        };
        Ok(s)
    }

    /// Construct the technique with its paper-tuned parameters for a data
    /// space of side `space_side`.
    pub fn build(self, space_side: f32) -> Technique {
        match self {
            TechniqueSpec::Scan => Technique::Index(Box::new(ScanIndex::new())),
            TechniqueSpec::BinarySearch => Technique::Index(Box::new(BinarySearchJoin::new())),
            TechniqueSpec::VecSearch => Technique::Index(Box::new(VecSearchJoin::new())),
            TechniqueSpec::Grid(stage) => {
                Technique::Index(Box::new(SimpleGrid::at_stage(stage, space_side)))
            }
            TechniqueSpec::GridIncremental => {
                Technique::Index(Box::new(IncrementalGrid::tuned(space_side)))
            }
            TechniqueSpec::RTreeStr => Technique::Index(Box::new(RTree::default())),
            TechniqueSpec::RTreeDyn => Technique::Index(Box::new(DynRTree::default())),
            TechniqueSpec::CRTree => Technique::Index(Box::new(CRTree::default())),
            TechniqueSpec::QuadTree => {
                Technique::Index(Box::new(QuadTree::with_default_bucket(space_side)))
            }
            TechniqueSpec::KdTrie => Technique::Index(Box::new(LinearKdTrie::new(space_side))),
            TechniqueSpec::Sweep => Technique::Batch(Box::new(PlaneSweepJoin::new())),
        }
    }

    /// Whether this spec builds a [`Technique::Batch`] (set-at-a-time)
    /// technique rather than an index.
    pub fn is_batch(self) -> bool {
        matches!(self, TechniqueSpec::Sweep)
    }

    /// Whether this spec is the quadratic ground-truth reference —
    /// essential for agreement tests, useless in timing runs.
    pub fn is_reference(self) -> bool {
        matches!(self, TechniqueSpec::Scan)
    }

    /// Whether this technique belongs in timing tables: everything except
    /// the quadratic reference scan.
    pub fn is_benchmarkable(self) -> bool {
        !self.is_reference()
    }

    /// The five techniques of the paper's Figure 2 (the Simple Grid in its
    /// *original*, worst-performing implementation).
    pub fn in_figure2(self) -> bool {
        matches!(
            self,
            TechniqueSpec::BinarySearch
                | TechniqueSpec::RTreeStr
                | TechniqueSpec::CRTree
                | TechniqueSpec::KdTrie
                | TechniqueSpec::Grid(Stage::Original)
        )
    }

    /// The Simple Grid improvement stage, if this spec is one (the Figure 4
    /// / Table 2 lower-half line-up).
    pub fn grid_stage(self) -> Option<Stage> {
        match self {
            TechniqueSpec::Grid(stage) => Some(stage),
            _ => None,
        }
    }
}

impl std::str::FromStr for TechniqueSpec {
    type Err = ParseSpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        TechniqueSpec::parse(s)
    }
}

impl fmt::Display for TechniqueSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_category_once() {
        let specs = registry();
        assert_eq!(specs.len(), 15);
        assert_eq!(specs.iter().filter(|s| s.is_batch()).count(), 1);
        assert_eq!(specs.iter().filter(|s| s.is_reference()).count(), 1);
        assert_eq!(specs.iter().filter(|s| s.in_figure2()).count(), 5);
        assert_eq!(specs.iter().filter(|s| s.grid_stage().is_some()).count(), 5);
    }

    #[test]
    fn every_spec_round_trips_through_parse() {
        for spec in registry() {
            assert_eq!(
                TechniqueSpec::parse(spec.name()),
                Ok(spec),
                "{}",
                spec.name()
            );
        }
    }

    #[test]
    fn names_and_labels_are_unique() {
        let specs = registry();
        for (i, a) in specs.iter().enumerate() {
            for b in &specs[i + 1..] {
                assert_ne!(a.name(), b.name());
                assert_ne!(a.label(), b.label());
            }
        }
    }

    #[test]
    fn aliases_resolve_to_tuned_variants() {
        assert_eq!(
            TechniqueSpec::parse("grid"),
            Ok(TechniqueSpec::Grid(Stage::CpsTuned))
        );
        assert_eq!(TechniqueSpec::parse("rtree"), Ok(TechniqueSpec::RTreeStr));
        assert_eq!(
            TechniqueSpec::parse("binsearch:vec"),
            Ok(TechniqueSpec::VecSearch)
        );
    }

    #[test]
    fn unknown_specs_are_rejected_with_the_full_menu() {
        let err = TechniqueSpec::parse("btree").unwrap_err();
        assert_eq!(err.spec, "btree");
        let msg = err.to_string();
        assert!(
            msg.contains("grid:inline") && msg.contains("sweep"),
            "{msg}"
        );
    }

    #[test]
    fn build_produces_the_right_category() {
        for spec in registry() {
            let tech = spec.build(1_000.0);
            match tech {
                Technique::Index(_) => assert!(!spec.is_batch(), "{}", spec.name()),
                Technique::Batch(_) => assert!(spec.is_batch(), "{}", spec.name()),
            }
        }
    }

    #[test]
    fn from_spec_parses_and_builds() {
        let mut t = Technique::from_spec("grid:inline", 1_000.0).unwrap();
        assert!(t.name().starts_with("Simple Grid"));
        assert!(t.as_index().is_some());
        assert!(t.as_index_mut().is_some());
        assert!(Technique::from_spec("nope", 1_000.0).is_err());
    }

    #[test]
    fn technique_runs_both_categories_through_one_entry_point() {
        use sj_base::driver::{TickActions, Workload};
        use sj_base::geom::{Point, Rect, Vec2};
        use sj_base::table::MovingSet;

        struct Toy;
        impl Workload for Toy {
            fn space(&self) -> Rect {
                Rect::space(100.0)
            }
            fn query_side(&self) -> f32 {
                30.0
            }
            fn init(&mut self) -> MovingSet {
                let mut s = MovingSet::default();
                for i in 0..20 {
                    s.push(
                        Point::new(i as f32 * 5.0, i as f32 * 5.0),
                        Vec2::new(1.0, 0.0),
                    );
                }
                s
            }
            fn plan_tick(&mut self, _t: u32, set: &MovingSet, a: &mut TickActions) {
                a.queriers.extend(0..set.len() as u32);
            }
        }

        let cfg = DriverConfig {
            ticks: 2,
            warmup: 0,
        };
        let mut reference = None;
        for spec in registry() {
            let mut tech = spec.build(100.0);
            let stats = tech.run(&mut Toy, cfg);
            assert!(stats.result_pairs > 0, "{}", spec.name());
            match reference {
                None => reference = Some((stats.result_pairs, stats.checksum)),
                Some(expect) => assert_eq!(
                    (stats.result_pairs, stats.checksum),
                    expect,
                    "{} computed a different join",
                    spec.name()
                ),
            }
        }
    }
}
