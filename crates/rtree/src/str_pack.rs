//! Sort-Tile-Recursive (STR) packing order (Leutenegger, Lopez &
//! Edgington, ICDE 1997).
//!
//! Given `n` rectangle centres and a fanout `f`, STR produces an ordering
//! such that consecutive runs of `f` items form spatially compact tiles:
//! items are sorted by x, cut into ⌈√(n/f)⌉ vertical slices of ⌈√(n/f)⌉·f
//! items each, and each slice is sorted by y. Both the R-tree and the
//! CR-tree bulk-load with this order, level by level.

/// Reorder `idx` (indices into the centre arrays) into STR order.
///
/// `cx`/`cy` yield the centre coordinates of item `i`.
pub fn str_order<FX, FY>(idx: &mut [u32], fanout: usize, cx: FX, cy: FY)
where
    FX: Fn(u32) -> f32,
    FY: Fn(u32) -> f32,
{
    assert!(fanout >= 2, "fanout must be at least 2");
    let n = idx.len();
    if n <= fanout {
        // A single tile: order within a node does not matter.
        return;
    }
    let leaves = n.div_ceil(fanout);
    let slices = (leaves as f64).sqrt().ceil() as usize;
    let slice_items = slices.max(1) * fanout;

    idx.sort_unstable_by(|&a, &b| cx(a).total_cmp(&cx(b)));
    let mut start = 0;
    while start < n {
        let end = (start + slice_items).min(n);
        idx[start..end].sort_unstable_by(|&a, &b| cy(a).total_cmp(&cy(b)));
        start = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_base::rng::Xoshiro256;

    #[test]
    fn order_is_a_permutation() {
        let mut rng = Xoshiro256::seeded(3);
        let pts: Vec<(f32, f32)> = (0..1000)
            .map(|_| (rng.range_f32(0.0, 100.0), rng.range_f32(0.0, 100.0)))
            .collect();
        let mut idx: Vec<u32> = (0..1000).collect();
        str_order(&mut idx, 8, |i| pts[i as usize].0, |i| pts[i as usize].1);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn tiles_are_spatially_compact() {
        // On a uniform square, STR tiles of fanout f should have area close
        // to f/n of the space — far smaller than random grouping.
        let mut rng = Xoshiro256::seeded(9);
        let n = 4096usize;
        let f = 16usize;
        let pts: Vec<(f32, f32)> = (0..n)
            .map(|_| (rng.range_f32(0.0, 1.0), rng.range_f32(0.0, 1.0)))
            .collect();
        let mut idx: Vec<u32> = (0..n as u32).collect();
        str_order(&mut idx, f, |i| pts[i as usize].0, |i| pts[i as usize].1);

        let mut total_area = 0.0f64;
        let mut tiles = 0usize;
        for chunk in idx.chunks(f) {
            let (mut x1, mut y1, mut x2, mut y2) = (f32::MAX, f32::MAX, f32::MIN, f32::MIN);
            for &i in chunk {
                let (x, y) = pts[i as usize];
                x1 = x1.min(x);
                y1 = y1.min(y);
                x2 = x2.max(x);
                y2 = y2.max(y);
            }
            total_area += ((x2 - x1) * (y2 - y1)) as f64;
            tiles += 1;
        }
        let avg = total_area / tiles as f64;
        // Ideal tile area ≈ f/n = 1/256 ≈ 0.0039; random grouping would be
        // near the full square (≈1). Require well under 10× ideal.
        assert!(avg < 0.04, "average STR tile area {avg}");
    }

    #[test]
    fn small_inputs_are_left_alone() {
        let mut idx: Vec<u32> = (0..5).collect();
        str_order(&mut idx, 8, |i| -(i as f32), |i| i as f32);
        assert_eq!(idx, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "fanout")]
    fn degenerate_fanout_panics() {
        let mut idx: Vec<u32> = (0..10).collect();
        str_order(&mut idx, 1, |i| i as f32, |i| i as f32);
    }
}
