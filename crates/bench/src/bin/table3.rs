//! Table 3 — memory-hierarchy profile of Simple Grid before and after the
//! paper's modifications: CPI, total retired operations, and L1/L2/L3
//! data-cache misses at the default workload.
//!
//! The paper reads hardware performance counters; this harness replays
//! the grid's instrumented memory-access stream through `sj-memsim`'s
//! simulated i7-class hierarchy instead (DESIGN.md §3). Absolute counts
//! are smaller than the paper's (we trace index traversals, not the whole
//! process), but the before/after ratios carry the same message.
//!
//! Run: `cargo run -p sj-bench --release --bin table3 [--ticks N] [--csv]`

use sj_bench::cli::CommonOpts;
use sj_bench::report::JsonLine;
use sj_bench::table::{count, Table};
use sj_core::driver::TickActions;
use sj_core::geom::Rect;
use sj_core::Workload;
use sj_grid::{SimpleGrid, Stage};
use sj_memsim::{CacheSim, CacheStats, CpiModel};
use sj_workload::UniformWorkload;

/// Run the full tick loop with the grid's build and query phases traced
/// into a fresh simulated cache hierarchy; returns the counter snapshot.
fn profile_stage(stage: Stage, opts: &CommonOpts) -> CacheStats {
    let mut params = opts.uniform_params();
    // Tracing multiplies work; default to fewer ticks than timing runs
    // unless the user asked explicitly.
    if opts.ticks.is_none() && !opts.paper {
        params.ticks = 3;
    }
    let mut workload = UniformWorkload::new(params);
    let space = workload.space();
    let query_side = workload.query_side();
    let mut set = workload.init();
    let mut grid = SimpleGrid::at_stage(stage, params.space_side);
    let mut sim = CacheSim::i7();
    let mut actions = TickActions::default();
    let mut sink = 0u64;

    for tick in 0..params.ticks {
        actions.clear();
        workload.plan_tick(tick, &set, &mut actions);
        grid.build_traced(&set.positions, &mut sim);
        for &q in &actions.queriers {
            let region =
                Rect::centered_square(set.positions.point(q), query_side).clipped_to(&space);
            // Sink-based query, like the driver: the traced access stream
            // contains only index traversal, no result materialization.
            grid.for_each_traced(&set.positions, &region, &mut |_| sink += 1, &mut sim);
        }
        for &(id, vx, vy) in &actions.velocity_updates {
            set.set_velocity(id, sj_core::geom::Vec2::new(vx, vy));
        }
        workload.advance(&mut set);
    }
    assert!(
        sink > 0,
        "queries produced no results — profile would be vacuous"
    );
    sim.stats()
}

fn main() {
    let opts = CommonOpts::parse();
    opts.require_self_join("table3");
    if let Some(w) = opts.workload {
        // table3's traced tick loop is tied to the uniform workload.
        eprintln!("--workload {} is not supported by this binary", w.name());
        std::process::exit(2);
    }
    if let Some(spec) = opts.technique {
        // table3 profiles the grid before/after stages; a single-technique override cannot be honored.
        eprintln!(
            "--technique {} is not supported by this binary",
            spec.name()
        );
        std::process::exit(2);
    }
    if opts.threads.is_some() {
        // The traced replay feeds one simulated cache hierarchy; a sharded
        // query phase would interleave the access streams meaninglessly.
        eprintln!("note: --threads is ignored — the traced profile is sequential by design");
    }
    let model = CpiModel::default();

    let before = profile_stage(Stage::Original, &opts);
    let after = profile_stage(Stage::CpsTuned, &opts);

    if opts.json {
        // One line per profiled stage, same reader-friendly shape as the
        // timing binaries (the counters replace the RunStats fields).
        for (stage, s) in [("grid:original", &before), ("grid:cps-tuned", &after)] {
            println!(
                "{}",
                JsonLine::new("table3")
                    .str("technique", stage)
                    .num("cpi", model.cpi(s))
                    .int("instrs", s.instrs)
                    .int("l1_misses", s.l1_misses)
                    .int("l2_misses", s.l2_misses)
                    .int("l3_misses", s.l3_misses)
                    .finish()
            );
        }
        return;
    }

    println!("# Table 3: profiling, 50% queries and updates (simulated i7 hierarchy)");
    let mut t = Table::new(vec![
        "Simple Grid",
        "CPI",
        "Total INS",
        "L1 misses",
        "L2 misses",
        "L3 misses",
    ]);
    for (label, s) in [("Before", &before), ("After", &after)] {
        t.row(vec![
            label.to_string(),
            format!("{:.2}", model.cpi(s)),
            count(s.instrs),
            count(s.l1_misses),
            count(s.l2_misses),
            count(s.l3_misses),
        ]);
    }
    let ratio = |a: u64, b: u64| {
        if b == 0 {
            "inf".to_string()
        } else {
            format!("{:.1}x", a as f64 / b as f64)
        }
    };
    t.row(vec![
        "Improvement".to_string(),
        format!("{:.2}x", model.cpi(&before) / model.cpi(&after).max(1e-12)),
        ratio(before.instrs, after.instrs),
        ratio(before.l1_misses, after.l1_misses),
        ratio(before.l2_misses, after.l2_misses),
        ratio(before.l3_misses, after.l3_misses),
    ]);
    println!("{}", t.render(opts.csv));
    println!(
        "(paper, hardware counters: CPI 1.32 -> 1.13, INS 171B -> 37B, \
         L1 8786M -> 1091M, L2 6148M -> 747M, L3 325M -> 67M)"
    );
}
