//@ path: crates/x/src/lib.rs
use sj_base::table::{EntryId, ExtentTable};

pub fn ids(n: usize) -> Vec<EntryId> {
    (0..n).map(|i| i as EntryId).collect()
}

// An extent-table loop is just as wrong: the cast skips the checked
// conversion, so a table past u32::MAX rows would silently truncate.
pub fn extent_ids(table: &ExtentTable) -> Vec<EntryId> {
    (0..table.len()).map(|i| i as EntryId).collect()
}
