//! Deprecated facade for the parallel query phase.
//!
//! Parallel execution is now a first-class part of the foundation: see
//! [`sj_core::par`] ([`ExecMode`], the sharded query phase, the
//! strip-partitioned batch join) and [`DriverConfig::exec`]. Every
//! registry technique runs under [`ExecMode::Parallel`] — not just the
//! grid this module was once tested with — and spec strings accept a
//! `@par<N>` modifier (`"grid:inline@par8"`).
//!
//! This module remains only so pre-registry callers keep compiling; it
//! re-exports the new types and keeps a thin wrapper around the old
//! entry point. No feature flag is needed for the new API — the
//! `parallel` cargo feature now gates nothing but this compatibility
//! module.

pub use sj_core::driver::DriverConfig;
pub use sj_core::par::{shard_batch_join, shard_index_query, ExecMode};

use sj_core::driver::{run_join, RunStats, Workload};
use sj_core::index::SpatialIndex;

/// Like [`sj_core::driver::run_join`], but the query phase fans out over
/// `threads` workers.
///
/// Deprecated: set [`DriverConfig::exec`] instead —
/// `cfg.with_exec(ExecMode::parallel(threads).unwrap())` — or parse a
/// `@par<N>` technique spec. The replacement takes
/// [`ExecMode::Parallel`]'s `NonZeroUsize`, so the zero-thread panic
/// below is unrepresentable at the new call sites: what used to be a
/// `#[should_panic]` test is now a compile-time guarantee (the CLI layer
/// rejects `--threads 0` while parsing; see `sj-bench`).
///
/// # Panics
/// Panics if `threads == 0`.
#[deprecated(
    since = "0.1.0",
    note = "use DriverConfig::with_exec(ExecMode::parallel(n).unwrap()) with run_join"
)]
pub fn run_join_parallel<W, I>(
    workload: &mut W,
    index: &mut I,
    cfg: DriverConfig,
    threads: usize,
) -> RunStats
where
    W: Workload + ?Sized,
    I: SpatialIndex + Sync + ?Sized,
{
    let exec = ExecMode::parallel(threads).expect("threads must be > 0");
    run_join(workload, index, cfg.with_exec(exec))
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)]

    use super::*;
    use sj_grid::SimpleGrid;
    use sj_workload::{UniformWorkload, WorkloadParams};

    #[test]
    fn shim_forwards_to_the_first_class_parallel_driver() {
        let params = WorkloadParams {
            num_points: 2_000,
            space_side: 8_000.0,
            ticks: 3,
            ..WorkloadParams::default()
        };
        let cfg = DriverConfig::new(3, 1);
        let sequential = {
            let mut w = UniformWorkload::new(params);
            let mut g = SimpleGrid::tuned(params.space_side);
            sj_core::driver::run_join(&mut w, &mut g, cfg)
        };
        let mut w = UniformWorkload::new(params);
        let mut g = SimpleGrid::tuned(params.space_side);
        let par = run_join_parallel(&mut w, &mut g, cfg, 4);
        assert_eq!(par.result_pairs, sequential.result_pairs);
        assert_eq!(par.checksum, sequential.checksum);
    }
}
