//! Every harness binary's `--json` output must round-trip through the
//! `bench_compare` reader.
//!
//! The writers ([`sj_bench::report`]) and the reader ([`sj_bench::json`] /
//! [`sj_bench::compare`]) are hand-rolled independently; this suite pins
//! them against each other with *real* measurements — one cheap cell per
//! registry technique, formatted in every shape the binaries emit
//! (`table2`-style bare lines, `scaling`/`fig`-style sweep lines,
//! `asymmetry`-style ratio lines) — rather than hand-written fixtures
//! that would drift from the writer.

use sj_bench::json::Json;
use sj_bench::report::stats_line;
use sj_bench::run_workload_spec;
use sj_bench::suite::{cell_matrix, document, run_cell};
use sj_core::driver::RunStats;
use sj_core::par::ExecMode;
use sj_workload::{WorkloadKind, WorkloadParams};

fn cheap_params() -> WorkloadParams {
    WorkloadParams {
        num_points: 1_500,
        ticks: 2,
        seed: 42,
        ..WorkloadParams::default()
    }
}

/// The field checks `bench_compare`'s loader applies to a cell record,
/// adapted to a bare harness line (no pinned-parameter fields).
fn assert_line_round_trips(line: &str, bench: &str, technique: &str, stats: &RunStats) {
    let v = Json::parse(line).unwrap_or_else(|e| panic!("{bench}/{technique}: {e}\n{line}"));
    assert_eq!(v.get("bench").and_then(Json::as_str), Some(bench));
    assert_eq!(v.get("technique").and_then(Json::as_str), Some(technique));
    for key in ["avg_tick_s", "build_s", "query_s", "update_s"] {
        let n = v
            .get(key)
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("{bench}/{technique}: {key} missing or non-numeric"));
        assert!(
            n.is_finite() && n >= 0.0,
            "{bench}/{technique}: {key} = {n}"
        );
    }
    assert_eq!(
        v.get("pairs").and_then(Json::as_u64),
        Some(stats.result_pairs)
    );
    assert_eq!(v.get("queries").and_then(Json::as_u64), Some(stats.queries));
    let checksum = v
        .get("checksum")
        .and_then(Json::as_str)
        .expect("checksum field");
    let parsed = u64::from_str_radix(checksum.trim_start_matches("0x"), 16)
        .unwrap_or_else(|_| panic!("{bench}/{technique}: checksum {checksum:?} is not hex"));
    assert_eq!(parsed, stats.checksum);
}

#[test]
fn every_registry_technique_round_trips_in_every_harness_shape() {
    let params = cheap_params();
    for spec in sj_core::technique::registry()
        .into_iter()
        .filter(|s| s.is_benchmarkable())
    {
        let stats = run_workload_spec(
            WorkloadKind::Uniform.spec(),
            &params,
            spec,
            ExecMode::Sequential,
        );
        let name = spec.name();
        // The three line shapes the harness binaries emit.
        let shapes: [(&str, Option<(&str, f64)>); 3] = [
            ("table2", None),
            ("scaling", Some(("threads", 4.0))),
            ("asymmetry", Some(("r_over_s", 0.1))),
        ];
        for (bench, sweep) in shapes {
            let line = stats_line(bench, &name, sweep, &stats);
            assert_line_round_trips(&line, bench, &name, &stats);
            if let Some((key, val)) = sweep {
                let v = Json::parse(&line).unwrap();
                assert_eq!(v.get(key).and_then(Json::as_f64), Some(val));
            }
        }
    }
}

#[test]
fn a_real_suite_document_self_compares_clean() {
    // Two genuinely-run matrix cells through the full pipeline:
    // run → document → bench_compare loader → self-diff.
    use sj_bench::compare::{compare, load, DEFAULT_THRESHOLD};
    let cells = cell_matrix();
    let picks: Vec<_> = cells
        .iter()
        .filter(|c| {
            c.join.is_self()
                && c.threads == 0
                && c.workload.name() == "uniform"
                && matches!(c.technique.name().as_str(), "grid:inline" | "rtree:str")
        })
        .collect();
    assert_eq!(picks.len(), 2);
    let results: Vec<_> = picks.iter().map(|c| run_cell(c, true)).collect();
    let doc = document(&results, true);
    let parsed = load(&doc).unwrap_or_else(|e| panic!("loader rejected a real document: {e}"));
    assert_eq!(parsed.mode, "quick");
    assert_eq!(parsed.cells.len(), 2);
    for (cell, r) in parsed.cells.iter().zip(&results) {
        assert_eq!(cell.id, r.spec.id());
        assert_eq!(cell.pairs, r.stats.result_pairs);
        assert!(cell.avg_tick_s > 0.0);
    }
    let report = compare(&parsed, &parsed, DEFAULT_THRESHOLD, false);
    assert!(report.passed(), "{:?}", report.findings);
    assert!(report.failures().is_empty());
}
