//! Memory-footprint report — the paper's §3.1 arithmetic checked live:
//! bytes per indexed point for every technique at the default workload,
//! with the original grid's 32 B/point vs. the refactored 12 B/point
//! called out.
//!
//! Run: `cargo run -p sj-bench --release --bin memory [--points N] [--csv]`

use sj_bench::cli::CommonOpts;
use sj_bench::table::Table;
use sj_bench::Technique;
use sj_core::Workload;
use sj_grid::Stage;
use sj_workload::UniformWorkload;

fn main() {
    let opts = CommonOpts::parse();
    let params = opts.uniform_params();
    let mut workload = UniformWorkload::new(params);
    let set = workload.init();
    let table = &set.positions;

    let techniques = [
        Technique::BinarySearch,
        Technique::RTree,
        Technique::CRTree,
        Technique::LinearKdTrie,
        Technique::Grid(Stage::Original),
        Technique::Grid(Stage::Restructured),
        Technique::Grid(Stage::CpsTuned),
    ];

    println!("# Index memory at {} points (base table excluded)", table.len());
    let mut t = Table::new(vec!["technique", "total_KiB", "bytes_per_point"]);
    for tech in techniques {
        let mut index = tech.instantiate(params.space_side);
        index.build(table);
        let bytes = index.memory_bytes();
        t.row(vec![
            tech.label(),
            format!("{}", bytes / 1024),
            format!("{:.1}", bytes as f64 / table.len() as f64),
        ]);
    }
    println!("{}", t.render(opts.csv));
    println!(
        "(paper S3.1: original grid = 24 + 32/bs = 32 B/point at bs=4 plus directory;\n\
         refactored  =  8 + 16/bs = 12 B/point at bs=4; both before re-tuning)"
    );
}
