//@ path: crates/base/src/simd.rs
/// # Safety
///
/// Caller must have verified AVX2 support at runtime first (the
/// dispatch wrapper in this module does).
#[target_feature(enable = "avx2")]
pub unsafe fn kernel(xs: &[f32]) -> f32 {
    xs.iter().sum()
}
