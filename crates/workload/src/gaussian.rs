//! The Gaussian (hotspot) synthetic workload (Table 1, right column).
//!
//! Objects are placed around a fixed set of hotspots and their movements
//! follow a Gaussian-like distribution: each tick an object's velocity is
//! re-drawn as a pull towards its hotspot plus Gaussian noise, capped at
//! the maximum speed. Fewer hotspots mean denser clusters, which is what
//! Figure 2b sweeps (1 .. 1000 hotspots, log scale): range queries centred
//! on cluster members return many results, stressing every technique's
//! per-result costs.
//!
//! Table 1 lists "% Updaters" as N/A for this workload — movement updates
//! are an inherent part of the Gaussian process, so every object re-draws
//! its velocity every tick.

use sj_base::driver::{TickActions, Workload};
use sj_base::geom::{Point, Rect, Vec2};
use sj_base::rng::{mix64, Xoshiro256};
use sj_base::table::{entry_id, MovingSet};

use crate::params::GaussianParams;

/// See module docs.
#[derive(Clone, Debug)]
pub struct GaussianWorkload {
    params: GaussianParams,
    hotspots: Vec<Point>,
    /// Hotspot each object is attracted to (index into `hotspots`).
    assignment: Vec<u32>,
    rng_place: Xoshiro256,
    rng_query: Xoshiro256,
    rng_move: Xoshiro256,
}

impl GaussianWorkload {
    pub fn new(params: GaussianParams) -> Self {
        debug_assert!(params.validate().is_ok());
        let mut root = Xoshiro256::seeded(params.base.seed);
        let mut rng_place = root.fork();
        let rng_query = root.fork();
        let rng_move = root.fork();

        let side = params.base.space_side;
        let hotspots = (0..params.hotspots)
            .map(|_| {
                Point::new(
                    rng_place.range_f32(0.0, side),
                    rng_place.range_f32(0.0, side),
                )
            })
            .collect();

        GaussianWorkload {
            params,
            hotspots,
            assignment: Vec::new(),
            rng_place,
            rng_query,
            rng_move,
        }
    }

    pub fn params(&self) -> &GaussianParams {
        &self.params
    }

    pub fn hotspots(&self) -> &[Point] {
        &self.hotspots
    }

    /// Gaussian displacement around a hotspot, clamped into the space.
    fn place_around(&mut self, h: Point) -> Point {
        let side = self.params.base.space_side;
        let sigma = self.params.sigma;
        let x = (h.x + self.rng_place.gaussian() * sigma).clamp(0.0, side);
        let y = (h.y + self.rng_place.gaussian() * sigma).clamp(0.0, side);
        Point::new(x, y)
    }

    /// The Gaussian movement step: pull towards the hotspot proportional to
    /// distance (an Ornstein–Uhlenbeck-style mean reversion) plus isotropic
    /// Gaussian noise, capped at max speed.
    fn step_velocity(&mut self, pos: Point, hotspot: Point) -> Vec2 {
        let max = self.params.base.max_speed;
        let sigma_v = max * 0.5;
        // Reversion rate chosen so an object sigma away from its hotspot
        // drifts back over ~sigma/max_speed ticks.
        let pull = 0.1f32;
        let v = Vec2::new(
            (hotspot.x - pos.x) * pull + self.rng_move.gaussian() * sigma_v,
            (hotspot.y - pos.y) * pull + self.rng_move.gaussian() * sigma_v,
        );
        v.clamp_len(max)
    }
}

impl Workload for GaussianWorkload {
    fn space(&self) -> Rect {
        Rect::space(self.params.base.space_side)
    }

    fn query_side(&self) -> f32 {
        self.params.base.query_side
    }

    fn init(&mut self) -> MovingSet {
        let n = self.params.base.num_points as usize;
        let k = self.hotspots.len();
        let mut set = MovingSet::with_capacity(n);
        self.assignment.clear();
        self.assignment.reserve(n);
        for _ in 0..n {
            let h_idx = self.rng_place.range_usize(k);
            let h = self.hotspots[h_idx];
            let p = self.place_around(h);
            let v = self.step_velocity(p, h);
            self.assignment.push(h_idx as u32);
            set.push(p, v);
        }
        set
    }

    fn plan_tick(&mut self, _tick: u32, set: &MovingSet, actions: &mut TickActions) {
        let n = entry_id(set.len());
        // Objects inserted from outside (a churn wrapper's arrivals) have
        // no hotspot yet: adopt them with a deterministic per-id
        // assignment, independent of every RNG stream.
        let k = self.hotspots.len() as u64;
        while self.assignment.len() < n as usize {
            let id = self.assignment.len() as u64;
            self.assignment
                .push((mix64(id ^ self.params.base.seed) % k) as u32);
        }
        for id in 0..n {
            if self.rng_query.bernoulli(self.params.base.frac_queriers) {
                actions.queriers.push(id);
            }
        }
        // Every object re-draws its velocity every tick (updaters N/A).
        // Dead rows still consume their draws, keeping the streams aligned
        // whether or not a churn wrapper later filters them out.
        for id in 0..n {
            let h = self.hotspots[self.assignment[id as usize] as usize];
            let v = self.step_velocity(set.positions.point(id), h);
            actions.velocity_updates.push((id, v.x, v.y));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::WorkloadParams;

    fn small_params(hotspots: u32) -> GaussianParams {
        GaussianParams {
            base: WorkloadParams {
                num_points: 2_000,
                space_side: 10_000.0,
                ticks: 10,
                ..WorkloadParams::default()
            },
            hotspots,
            sigma: 400.0,
        }
    }

    #[test]
    fn init_stays_inside_space() {
        let mut w = GaussianWorkload::new(small_params(4));
        let set = w.init();
        let space = w.space();
        for (_, p) in set.positions.iter() {
            assert!(space.contains_point(p.x, p.y));
        }
    }

    #[test]
    fn points_cluster_near_their_hotspots() {
        let mut w = GaussianWorkload::new(small_params(4));
        let set = w.init();
        let sigma = w.params().sigma;
        let mut within = 0usize;
        for (id, p) in set.positions.iter() {
            let h = w.hotspots()[w.assignment[id as usize] as usize];
            if p.dist2(&h).sqrt() <= 3.0 * sigma * std::f32::consts::SQRT_2 {
                within += 1;
            }
        }
        // Nearly everything lies within 3 sigma (per axis) of its hotspot;
        // clamping to the space can only pull points closer.
        let frac = within as f64 / set.len() as f64;
        assert!(frac > 0.98, "fraction near hotspot: {frac}");
    }

    #[test]
    fn fewer_hotspots_means_denser_clusters() {
        let density = |hotspots: u32| {
            let mut w = GaussianWorkload::new(small_params(hotspots));
            let set = w.init();
            // Count points inside one query-sized box at the first hotspot.
            let q = Rect::centered_square(w.hotspots()[0], 400.0);
            set.positions
                .iter()
                .filter(|(_, p)| q.contains_point(p.x, p.y))
                .count()
        };
        let dense = density(1);
        let sparse = density(64);
        assert!(
            dense > sparse * 4,
            "1 hotspot box: {dense}, 64 hotspots box: {sparse}"
        );
    }

    #[test]
    fn every_object_updates_every_tick() {
        let mut w = GaussianWorkload::new(small_params(4));
        let set = w.init();
        let mut a = TickActions::default();
        w.plan_tick(0, &set, &mut a);
        assert_eq!(a.velocity_updates.len(), set.len());
    }

    #[test]
    fn velocities_respect_max_speed() {
        let mut w = GaussianWorkload::new(small_params(4));
        let set = w.init();
        let mut a = TickActions::default();
        w.plan_tick(0, &set, &mut a);
        let max = w.params().base.max_speed;
        for &(_, vx, vy) in &a.velocity_updates {
            assert!(Vec2::new(vx, vy).len() <= max * 1.0001);
        }
    }

    #[test]
    fn deterministic_by_seed() {
        let mk = || {
            let mut w = GaussianWorkload::new(small_params(8));
            let set = w.init();
            (w.hotspots()[3], set.positions.point(100))
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn objects_remain_clustered_after_many_ticks() {
        // The mean-reverting movement model must not diffuse clusters away,
        // or Figure 2b's density effect would decay over the run.
        let mut w = GaussianWorkload::new(small_params(2));
        let mut set = w.init();
        let mut a = TickActions::default();
        for t in 0..50 {
            a.clear();
            w.plan_tick(t, &set, &mut a);
            for &(id, vx, vy) in &a.velocity_updates {
                set.set_velocity(id, Vec2::new(vx, vy));
            }
            w.advance(&mut set);
        }
        let sigma = w.params().sigma;
        let mut near = 0usize;
        for (id, p) in set.positions.iter() {
            let h = w.hotspots()[w.assignment[id as usize] as usize];
            if p.dist2(&h).sqrt() <= 6.0 * sigma {
                near += 1;
            }
        }
        let frac = near as f64 / set.len() as f64;
        assert!(
            frac > 0.9,
            "fraction still clustered after 50 ticks: {frac}"
        );
    }
}
