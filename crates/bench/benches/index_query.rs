//! Criterion microbenchmark: range-query cost per technique at the
//! default workload geometry (query side 400 over a 22K² space with
//! 50 K points) — the "Query" column of Table 2 in isolation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sj_core::geom::{Point, Rect};
use sj_core::rng::Xoshiro256;
use sj_core::table::PointTable;
use sj_core::technique::registry;
use sj_workload::{UniformWorkload, WorkloadParams};
use std::hint::black_box;

fn bench_queries(c: &mut Criterion) {
    let params = WorkloadParams::default();
    let mut w = UniformWorkload::new(params);
    let set = sj_core::Workload::init(&mut w);
    let table: &PointTable = &set.positions;
    let space = Rect::space(params.space_side);

    // A fixed batch of query rectangles centred on object positions, as
    // the driver produces them.
    let mut rng = Xoshiro256::seeded(1234);
    let queries: Vec<Rect> = (0..256)
        .map(|_| {
            let i = rng.range_usize(table.len());
            let c = Point::new(table.x(i as u32), table.y(i as u32));
            Rect::centered_square(c, params.query_side).clipped_to(&space)
        })
        .collect();

    let mut group = c.benchmark_group("query_batch_256");
    group.sample_size(10);
    for spec in registry()
        .into_iter()
        .filter(|s| s.is_benchmarkable() && !s.is_batch())
    {
        let mut tech = spec.build(params.space_side);
        let index = tech.as_index_mut().expect("batch specs filtered out");
        index.build(table);
        group.bench_function(BenchmarkId::from_parameter(spec.label()), |b| {
            b.iter(|| {
                // Sink-folded, as the driver queries: count matches only.
                let mut found = 0usize;
                for q in &queries {
                    index.for_each_in(black_box(table), black_box(q), &mut |_| found += 1);
                }
                black_box(found)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
