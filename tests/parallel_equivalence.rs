//! The non-sequential execution modes' contract, proven registry-wide
//! and **four ways**: for *every* technique in the registry — both join
//! categories, every grid stage, the quadratic reference — every tested
//! thread count `@par<N>`, every tested tile count `@tiles<N>`, AND
//! every tested pooled shape `@tiles<N>@par<T>` (the mini-join scheduler,
//! DESIGN.md §14, including the adaptive `@tilesauto` tiling), the run's
//! `RunStats` are **bit-identical** to the sequential run on the same
//! workload seed: pair count, checksum, query/update totals, and the
//! per-phase tick record. Before this harness existed, only the grid was
//! ever exercised in parallel (through the old feature-gated facade); now
//! a technique cannot enter the registry without its parallel, its
//! space-partitioned, and its pooled path all being proven equivalent.
//!
//! Thread counts include 1 (the sharded code path with a single worker),
//! non-powers-of-two (3, 7 — uneven chunk boundaries), and counts
//! exceeding the querier count on small workloads (empty tail shards).
//! Tile counts include 1 (a single tile owning the whole space), a prime
//! (5 → 5×1 strip grid), and 16, which overshards small populations so
//! many tiles hold nothing. Pool shapes include more workers than tiles
//! (4×8 — workers idle once the queue drains), fewer (16×3 — every
//! worker drains many tiles' mini-joins), and an oversharded pool on a
//! tiny population (16 tiles × 8 workers over 6 points).
//!
//! One deliberate carve-out: `index_bytes` is compared for `@par<N>`
//! (same single index) but **not** for `@tiles<N>` — the tiled footprint
//! is the sum of N private per-tile indexes over *replicated* points and
//! is structurally different from the sequential build (DESIGN.md §13).
//! The join itself — pairs and checksum — has no such carve-out anywhere.

use proptest::prelude::*;
use spatial_joins::prelude::*;

const THREAD_COUNTS: [usize; 4] = [1, 2, 3, 7];
const TILE_COUNTS: [usize; 4] = [1, 2, 5, 16];
/// Pooled `(tiles, workers)` shapes: worker-starved, worker-rich, uneven.
const POOL_SHAPES: [(usize, usize); 3] = [(4, 8), (5, 2), (16, 3)];

fn params(seed: u64, num_points: u32) -> WorkloadParams {
    WorkloadParams {
        num_points,
        ticks: 3,
        space_side: 6_000.0,
        seed,
        ..WorkloadParams::default()
    }
}

fn run(spec: TechniqueSpec, p: WorkloadParams, exec: ExecMode) -> RunStats {
    let mut workload = UniformWorkload::new(p);
    let mut tech = spec.build(p.space_side);
    tech.run(&mut workload, DriverConfig::new(p.ticks, 1).with_exec(exec))
}

/// Assert every countable RunStats field matches except the index
/// footprint (wall-clock durations in `ticks` are the only legitimately
/// nondeterministic part of a run — the *number* of recorded ticks must
/// still match). The footprint carve-out exists for tiled runs (see the
/// module docs); [`assert_bit_identical`] adds it back for modes that
/// share the sequential build.
fn assert_join_identical(seq: &RunStats, par: &RunStats, ctx: &str) {
    assert_eq!(par.result_pairs, seq.result_pairs, "{ctx}: pair count");
    assert_eq!(par.checksum, seq.checksum, "{ctx}: checksum");
    assert_eq!(par.queries, seq.queries, "{ctx}: query count");
    assert_eq!(par.updates, seq.updates, "{ctx}: update count");
    assert_eq!(par.removals, seq.removals, "{ctx}: removal count");
    assert_eq!(par.inserts, seq.inserts, "{ctx}: insert count");
    assert_eq!(par.ticks.len(), seq.ticks.len(), "{ctx}: measured ticks");
}

/// [`assert_join_identical`] plus the index footprint — the full contract
/// for `@par<N>`, which probes the one sequentially built index.
fn assert_bit_identical(seq: &RunStats, par: &RunStats, ctx: &str) {
    assert_join_identical(seq, par, ctx);
    assert_eq!(par.index_bytes, seq.index_bytes, "{ctx}: index footprint");
}

/// Run `spec` under sequential, every tested `@par<N>`, every tested
/// `@tiles<N>`, and every tested `@tiles<N>@par<T>` pool shape (plus the
/// adaptive tiling, pooled and not), asserting the four-way equivalence.
fn check_four_way<F: Fn(ExecMode) -> RunStats>(run: F, ctx: &str) -> RunStats {
    let seq = run(ExecMode::Sequential);
    for threads in THREAD_COUNTS {
        let par = run(ExecMode::parallel(threads).unwrap());
        assert_bit_identical(&seq, &par, &format!("{ctx} @par{threads}"));
    }
    for tiles in TILE_COUNTS {
        let tiled = run(ExecMode::partitioned(tiles).unwrap());
        assert_join_identical(&seq, &tiled, &format!("{ctx} @tiles{tiles}"));
    }
    for (tiles, workers) in POOL_SHAPES {
        let pooled = run(ExecMode::pooled(tiles, workers).unwrap());
        assert_join_identical(&seq, &pooled, &format!("{ctx} @tiles{tiles}@par{workers}"));
    }
    let auto = run(ExecMode::adaptive());
    assert_join_identical(&seq, &auto, &format!("{ctx} @tilesauto"));
    let auto_pooled = run(ExecMode::adaptive_pooled(2).unwrap());
    assert_join_identical(&seq, &auto_pooled, &format!("{ctx} @tilesauto@par2"));
    seq
}

fn check_registry_equivalence(seed: u64, num_points: u32) {
    let p = params(seed, num_points);
    for spec in registry() {
        check_four_way(|exec| run(spec, p, exec), &spec.name());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn parallel_runstats_are_bit_identical_for_every_registry_technique(
        seed in 0u64..=u64::MAX,
        num_points in 300u32..1_200,
    ) {
        check_registry_equivalence(seed, num_points);
    }

    #[test]
    fn equivalence_holds_when_workers_exceed_the_querier_count(
        seed in 0u64..=u64::MAX,
    ) {
        // A handful of objects, half of them querying: most shards (and
        // most tiles — oversharding) are empty, the merge must still
        // reproduce the sequential totals.
        let p = params(seed, 6);
        for spec in registry() {
            let seq = run(spec, p, ExecMode::Sequential);
            let par = run(spec, p, ExecMode::parallel(16).unwrap());
            assert_bit_identical(&seq, &par, &format!("{} @par16 (tiny)", spec.name()));
            for tiles in [16usize, 64] {
                let tiled = run(spec, p, ExecMode::partitioned(tiles).unwrap());
                assert_join_identical(
                    &seq,
                    &tiled,
                    &format!("{} @tiles{tiles} (tiny)", spec.name()),
                );
            }
            // An oversharded pool on 6 points: nearly every mini-join is
            // empty and most workers never win the cursor race.
            let pooled = run(spec, p, ExecMode::pooled(16, 8).unwrap());
            assert_join_identical(
                &seq,
                &pooled,
                &format!("{} @tiles16@par8 (tiny)", spec.name()),
            );
        }
    }
}

proptest! {
    // The full two-registry matrix is the most expensive property in the
    // suite (techniques x workloads x exec modes per case); a couple of
    // seeds is plenty on top of the focused single-workload sweeps above.
    #![proptest_config(ProptestConfig::with_cases(2))]

    #[test]
    fn equivalence_holds_for_every_technique_on_every_registry_workload(
        seed in 0u64..=u64::MAX,
    ) {
        // The PR 4 acceptance matrix: technique registry x workload
        // registry (churn variants included, where the population itself
        // turns over mid-run), sequential vs >= 2 parallel thread counts,
        // all RunStats counts bit-identical — and all techniques agreeing
        // with each other per workload.
        let p = WorkloadParams {
            num_points: 500,
            ticks: 3,
            space_side: 6_000.0,
            max_speed: 150.0,
            seed,
            ..WorkloadParams::default()
        };
        for wspec in workload_registry() {
            let mut reference: Option<(u64, u64)> = None;
            for spec in registry() {
                let run = |exec: ExecMode| {
                    let mut workload = wspec.build(p);
                    let mut tech = spec.build(p.space_side);
                    tech.run(&mut *workload, DriverConfig::new(p.ticks, 1).with_exec(exec))
                };
                let seq = run(ExecMode::Sequential);
                for threads in [2usize, 5] {
                    let par = run(ExecMode::parallel(threads).unwrap());
                    assert_bit_identical(
                        &seq,
                        &par,
                        &format!("{} @par{threads} on {}", spec.name(), wspec.name()),
                    );
                }
                // Space-partitioned runs over the same matrix: churn
                // workloads are the interesting case (a row dying mid-run
                // must vanish from every tile replica that held it).
                for tiles in [2usize, 5] {
                    let tiled = run(ExecMode::partitioned(tiles).unwrap());
                    assert_join_identical(
                        &seq,
                        &tiled,
                        &format!("{} @tiles{tiles} on {}", spec.name(), wspec.name()),
                    );
                }
                // Pooled and adaptive under the same matrix — churn is
                // again the hard case: the adaptive policy re-decides the
                // tile count from the live population every tick, so the
                // grid itself can change mid-run without moving a bit of
                // the answer.
                let pooled = run(ExecMode::pooled(5, 2).unwrap());
                assert_join_identical(
                    &seq,
                    &pooled,
                    &format!("{} @tiles5@par2 on {}", spec.name(), wspec.name()),
                );
                let auto = run(ExecMode::adaptive_pooled(2).unwrap());
                assert_join_identical(
                    &seq,
                    &auto,
                    &format!("{} @tilesauto@par2 on {}", spec.name(), wspec.name()),
                );
                match reference {
                    None => reference = Some((seq.result_pairs, seq.checksum)),
                    Some(expect) => assert_eq!(
                        (seq.result_pairs, seq.checksum),
                        expect,
                        "{} computed a different join on {}",
                        spec.name(),
                        wspec.name()
                    ),
                }
            }
        }
    }
}

proptest! {
    // Technique registry x join shape (self + two bipartite ratios),
    // sequential vs parallel {2, 5} vs tiled {1, 2, 5, 16} — the PR 5
    // acceptance matrix widened into the three-way PR 8 one. Like the
    // full workload matrix above, a couple of seeds is plenty.
    #![proptest_config(ProptestConfig::with_cases(2))]

    #[test]
    fn equivalence_holds_for_every_technique_on_every_join_shape(
        seed in 0u64..=u64::MAX,
    ) {
        let p = WorkloadParams {
            num_points: 600,
            ticks: 3,
            space_side: 6_000.0,
            seed,
            ..WorkloadParams::default()
        };
        let equal = JoinSpec::bipartite(
            WorkloadSpec::parse("uniform").unwrap(),
            WorkloadSpec::parse("gaussian:h3").unwrap(),
        );
        let shapes = [
            JoinSpec::SelfJoin,
            equal,
            equal.with_ratio(std::num::NonZeroU32::new(10).unwrap()),
        ];
        for jspec in shapes {
            let mut reference: Option<(u64, u64)> = None;
            for spec in registry() {
                let run = |exec: ExecMode| {
                    sj_bench::run_joined_spec(
                        jspec,
                        WorkloadKind::Uniform.spec(),
                        &p,
                        spec,
                        exec,
                    )
                };
                let seq = run(ExecMode::Sequential);
                for threads in [2usize, 5] {
                    let par = run(ExecMode::parallel(threads).unwrap());
                    assert_bit_identical(
                        &seq,
                        &par,
                        &format!("{} @par{threads} on {}", spec.name(), jspec.name()),
                    );
                }
                for tiles in TILE_COUNTS {
                    let tiled = run(ExecMode::partitioned(tiles).unwrap());
                    assert_join_identical(
                        &seq,
                        &tiled,
                        &format!("{} @tiles{tiles} on {}", spec.name(), jspec.name()),
                    );
                }
                // Bipartite pooled runs: the query relation is chunked
                // into mini-joins independently of the data relation.
                let pooled = run(ExecMode::pooled(4, 2).unwrap());
                assert_join_identical(
                    &seq,
                    &pooled,
                    &format!("{} @tiles4@par2 on {}", spec.name(), jspec.name()),
                );
                // Scan-equality per shape, across all 15 techniques.
                match reference {
                    None => reference = Some((seq.result_pairs, seq.checksum)),
                    Some(expect) => assert_eq!(
                        (seq.result_pairs, seq.checksum),
                        expect,
                        "{} computed a different join on {}",
                        spec.name(),
                        jspec.name()
                    ),
                }
            }
        }
    }
}

#[test]
fn spec_modifier_and_config_mode_agree() {
    // `grid:inline@par3` (exec carried by the built technique) and an
    // explicit parallel DriverConfig must drive the identical computation,
    // and likewise for the tiled modifier.
    let p = params(99, 1_000);
    let seq = run(
        TechniqueSpec::parse("grid:inline").unwrap(),
        p,
        ExecMode::Sequential,
    );
    let via_cfg = run(
        TechniqueSpec::parse("grid:inline").unwrap(),
        p,
        ExecMode::parallel(3).unwrap(),
    );
    let via_spec = run(
        TechniqueSpec::parse("grid:inline@par3").unwrap(),
        p,
        ExecMode::Sequential,
    );
    assert_bit_identical(&seq, &via_cfg, "grid:inline via config");
    assert_bit_identical(&seq, &via_spec, "grid:inline@par3 via spec");
    let tiled_via_cfg = run(
        TechniqueSpec::parse("grid:inline").unwrap(),
        p,
        ExecMode::partitioned(3).unwrap(),
    );
    let tiled_via_spec = run(
        TechniqueSpec::parse("grid:inline@tiles3").unwrap(),
        p,
        ExecMode::Sequential,
    );
    assert_join_identical(&seq, &tiled_via_cfg, "grid:inline tiled via config");
    assert_join_identical(&seq, &tiled_via_spec, "grid:inline@tiles3 via spec");
    // The two tiled routes share everything including the footprint.
    assert_eq!(tiled_via_cfg.index_bytes, tiled_via_spec.index_bytes);
    // And the composed pooled modifier: @tiles4@par2 via spec vs config.
    let pooled_via_cfg = run(
        TechniqueSpec::parse("grid:inline").unwrap(),
        p,
        ExecMode::pooled(4, 2).unwrap(),
    );
    let pooled_via_spec = run(
        TechniqueSpec::parse("grid:inline@tiles4@par2").unwrap(),
        p,
        ExecMode::Sequential,
    );
    assert_join_identical(&seq, &pooled_via_cfg, "grid:inline pooled via config");
    assert_join_identical(&seq, &pooled_via_spec, "grid:inline@tiles4@par2 via spec");
    assert_eq!(pooled_via_cfg.index_bytes, pooled_via_spec.index_bytes);
    let auto_via_spec = run(
        TechniqueSpec::parse("grid:inline@tilesauto").unwrap(),
        p,
        ExecMode::Sequential,
    );
    assert_join_identical(&seq, &auto_via_spec, "grid:inline@tilesauto via spec");
}

#[test]
fn batch_partitioning_is_equivalent_on_the_gaussian_workload() {
    // The plane sweep's strips (and, tiled, its per-tile replicas) see
    // skewed, hotspot-concentrated query sets here — uneven worker
    // populations must not change the join.
    let p = GaussianParams {
        base: WorkloadParams {
            num_points: 1_500,
            ticks: 3,
            space_side: 6_000.0,
            seed: 7,
            ..WorkloadParams::default()
        },
        hotspots: 2,
        sigma: 250.0,
    };
    let cfg = DriverConfig::new(3, 1);
    let mk = |exec: ExecMode| {
        let mut workload = GaussianWorkload::new(p);
        let mut tech = TechniqueKind::Sweep.spec().build(p.base.space_side);
        tech.run(&mut workload, cfg.with_exec(exec))
    };
    let seq = mk(ExecMode::Sequential);
    for threads in THREAD_COUNTS {
        let par = mk(ExecMode::parallel(threads).unwrap());
        assert_bit_identical(&seq, &par, &format!("sweep @par{threads} (gaussian)"));
    }
    for tiles in TILE_COUNTS {
        let tiled = mk(ExecMode::partitioned(tiles).unwrap());
        assert_join_identical(&seq, &tiled, &format!("sweep @tiles{tiles} (gaussian)"));
    }
    // The pooled scheduler is built for exactly this shape: hotspot tiles
    // hold most of the queriers, and the pool re-balances them.
    for (tiles, workers) in POOL_SHAPES {
        let pooled = mk(ExecMode::pooled(tiles, workers).unwrap());
        assert_join_identical(
            &seq,
            &pooled,
            &format!("sweep @tiles{tiles}@par{workers} (gaussian)"),
        );
    }
    let auto = mk(ExecMode::adaptive_pooled(3).unwrap());
    assert_join_identical(&seq, &auto, "sweep @tilesauto@par3 (gaussian)");
}
