//! Ablations beyond the paper (DESIGN.md §7):
//!
//! 1. The structure × algorithm cross product at bs = 4 / cps = 13 —
//!    isolates how much of the gain is layout vs. query algorithm
//!    (the paper only reports the cumulative path).
//! 2. Coordinate inlining (`Layout::InlineCoords`) on top of the tuned
//!    grid — the improvement the paper explicitly leaves on the table to
//!    preserve the secondary-index assumption.
//! 3. STR bulk load vs. incremental Guttman inserts for the R-tree —
//!    how much of "trees are fast" is the packing.
//! 4. Index nested loop vs. the index-free plane-sweep batch join across
//!    query rates — the specialized-join category of the original study.
//! 5. Rebuild-per-tick vs. incremental (u-Grid-style) maintenance across
//!    object speeds — the update-time category of the original study.
//! 6. Scalar vs. SIMD-filtered Binary Search — the data-parallel step the
//!    paper's "implementation matters" argument invites.
//!
//! Run: `cargo run -p sj-bench --release --bin ablation [--ticks N] [--csv]`

use sj_bench::cli::CommonOpts;
use sj_bench::table::{secs, Table};
use sj_bench::{run_uniform, Technique};
use sj_core::driver::{run_batch_join, run_join, DriverConfig};
use sj_core::index::SpatialIndex;
use sj_grid::{GridConfig, IncrementalGrid, Layout, QueryAlgo};
use sj_rtree::DynRTree;
use sj_sweep::PlaneSweepJoin;
use sj_workload::UniformWorkload;

fn main() {
    let opts = CommonOpts::parse();
    let params = opts.uniform_params();

    println!("# Ablation 1: layout x query algorithm (bs=4, cps=13)");
    let mut t = Table::new(vec!["layout", "algorithm", "avg_time_per_tick_s"]);
    for layout in [Layout::Original, Layout::Inline] {
        for algo in [QueryAlgo::FullScan, QueryAlgo::RangeScan] {
            let cfg = GridConfig {
                cells_per_side: GridConfig::ORIGINAL_CPS,
                bucket_size: GridConfig::ORIGINAL_BS,
                layout,
                query_algo: algo,
            };
            let stats = run_uniform(&params, Technique::GridCustom(cfg));
            t.row(vec![
                format!("{layout:?}"),
                format!("{algo:?}"),
                secs(stats.avg_tick_seconds()),
            ]);
        }
    }
    println!("{}", t.render(opts.csv));

    println!("# Ablation 2: coordinate inlining on the tuned grid");
    let mut t = Table::new(vec!["variant", "avg_tick_s", "build_s", "query_s"]);
    for (label, layout) in [("tuned (secondary index)", Layout::Inline), ("tuned + inline coords", Layout::InlineCoords)]
    {
        let cfg = GridConfig { layout, ..GridConfig::tuned() };
        let stats = run_uniform(&params, Technique::GridCustom(cfg));
        t.row(vec![
            label.to_string(),
            secs(stats.avg_tick_seconds()),
            secs(stats.avg_build_seconds()),
            secs(stats.avg_query_seconds()),
        ]);
    }
    println!("{}", t.render(opts.csv));

    println!("# Ablation 3: STR bulk load vs incremental Guttman R-tree");
    let mut t = Table::new(vec!["variant", "avg_tick_s", "build_s", "query_s"]);
    {
        let stats = run_uniform(&params, Technique::RTree);
        t.row(vec![
            "STR bulk load".to_string(),
            secs(stats.avg_tick_seconds()),
            secs(stats.avg_build_seconds()),
            secs(stats.avg_query_seconds()),
        ]);
        let mut workload = UniformWorkload::new(params);
        let mut dyn_tree = DynRTree::default();
        let cfg = DriverConfig { ticks: params.ticks, warmup: 1 };
        let stats = run_join(&mut workload, &mut dyn_tree as &mut dyn SpatialIndex, cfg);
        t.row(vec![
            "incremental (quadratic split)".to_string(),
            secs(stats.avg_tick_seconds()),
            secs(stats.avg_build_seconds()),
            secs(stats.avg_query_seconds()),
        ]);
    }
    println!("{}", t.render(opts.csv));

    println!("# Ablation 4: index nested loop vs plane-sweep batch join");
    let cfg = DriverConfig { ticks: params.ticks, warmup: 1 };
    let mut t = Table::new(vec!["frac_queriers", "tuned_grid_s", "rtree_s", "plane_sweep_s"]);
    for frac in [0.1f32, 0.5, 0.9] {
        let p = sj_workload::WorkloadParams { frac_queriers: frac, ..params };
        let grid = run_uniform(&p, Technique::Grid(sj_grid::Stage::CpsTuned));
        let rtree = run_uniform(&p, Technique::RTree);
        let mut workload = UniformWorkload::new(p);
        let mut sweep = PlaneSweepJoin::new();
        let sweep_stats = run_batch_join(&mut workload, &mut sweep, cfg);
        t.row(vec![
            format!("{frac}"),
            secs(grid.avg_tick_seconds()),
            secs(rtree.avg_tick_seconds()),
            secs(sweep_stats.avg_tick_seconds()),
        ]);
    }
    println!("{}", t.render(opts.csv));

    println!("# Ablation 5: rebuild-per-tick vs incremental grid maintenance");
    let mut t = Table::new(vec!["max_speed", "rebuild_build_s", "incremental_build_s"]);
    for speed in [50.0f32, 200.0, 800.0] {
        let p = sj_workload::WorkloadParams { max_speed: speed, ..params };
        let rebuild = run_uniform(&p, Technique::Grid(sj_grid::Stage::CpsTuned));
        let mut workload = UniformWorkload::new(p);
        let mut inc = IncrementalGrid::tuned(p.space_side);
        let inc_stats = run_join(&mut workload, &mut inc as &mut dyn SpatialIndex, cfg);
        t.row(vec![
            format!("{speed}"),
            secs(rebuild.avg_build_seconds()),
            secs(inc_stats.avg_build_seconds()),
        ]);
    }
    println!("{}", t.render(opts.csv));

    println!("# Ablation 6: scalar vs vectorized Binary Search");
    let mut t = Table::new(vec!["variant", "avg_tick_s", "build_s", "query_s"]);
    {
        let plain = run_uniform(&params, Technique::BinarySearch);
        t.row(vec![
            "pointer-based (secondary index)".to_string(),
            secs(plain.avg_tick_seconds()),
            secs(plain.avg_build_seconds()),
            secs(plain.avg_query_seconds()),
        ]);
        let mut workload = UniformWorkload::new(params);
        let mut vec_join = sj_binsearch::VecSearchJoin::new();
        let stats = run_join(&mut workload, &mut vec_join as &mut dyn SpatialIndex, cfg);
        t.row(vec![
            "sorted SoA + SSE2 filter".to_string(),
            secs(stats.avg_tick_seconds()),
            secs(stats.avg_build_seconds()),
            secs(stats.avg_query_seconds()),
        ]);
    }
    println!("{}", t.render(opts.csv));
}
