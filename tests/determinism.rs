//! Reproducibility: every figure in EXPERIMENTS.md quotes a seed, so a
//! run must be a pure function of (seed, parameters, technique).

use spatial_joins::prelude::*;

fn run_once(seed: u64) -> RunStats {
    let params = WorkloadParams {
        num_points: 2_000,
        ticks: 5,
        space_side: 8_000.0,
        seed,
        ..WorkloadParams::default()
    };
    let mut workload = UniformWorkload::new(params);
    let mut grid = SimpleGrid::tuned(params.space_side);
    run_join(&mut workload, &mut grid, DriverConfig { ticks: params.ticks, warmup: 1 })
}

#[test]
fn identical_seeds_reproduce_bit_identical_joins() {
    let a = run_once(42);
    let b = run_once(42);
    assert_eq!(a.checksum, b.checksum);
    assert_eq!(a.result_pairs, b.result_pairs);
    assert_eq!(a.queries, b.queries);
    assert_eq!(a.updates, b.updates);
}

#[test]
fn different_seeds_give_different_joins() {
    let a = run_once(1);
    let b = run_once(2);
    assert_ne!(a.checksum, b.checksum);
}

#[test]
fn gaussian_workload_is_deterministic_too() {
    let mk = || {
        let params = GaussianParams {
            base: WorkloadParams {
                num_points: 1_500,
                ticks: 4,
                space_side: 8_000.0,
                seed: 7,
                ..WorkloadParams::default()
            },
            hotspots: 8,
            sigma: 300.0,
        };
        let mut workload = GaussianWorkload::new(params);
        let mut index = LinearKdTrie::new(params.base.space_side);
        run_join(&mut workload, &mut index, DriverConfig { ticks: 4, warmup: 0 })
    };
    let (a, b) = (mk(), mk());
    assert_eq!(a.checksum, b.checksum);
    assert_eq!(a.result_pairs, b.result_pairs);
}

#[test]
fn checksum_is_independent_of_result_order() {
    // The R-tree and the grid enumerate results in very different orders;
    // agreement of checksums in the cross-index tests depends on the fold
    // being order independent. Pin that property directly.
    use spatial_joins::core::driver::fold_pair;
    let pairs = [(1u32, 9u32), (2, 8), (3, 7), (4, 6)];
    let forward = pairs.iter().fold(0u64, |c, &(q, r)| fold_pair(c, q, r));
    let backward = pairs.iter().rev().fold(0u64, |c, &(q, r)| fold_pair(c, q, r));
    assert_eq!(forward, backward);
}
