//! The fixture gate: every rule ships a `bad.rs` / `good.rs` pair under
//! `tests/fixtures/<rule>/`. `bad.rs` must trip *exactly* its rule and
//! `good.rs` must lint clean — so each rule's firing and non-firing
//! behaviour is pinned by example, not just by unit test.
//!
//! Rules are path-sensitive (e.g. `registry-techniques` only looks at
//! `crates/bench/src/bin/`), so each fixture declares the virtual
//! workspace path it is linted as via a first-line directive:
//!
//! ```text
//! //@ path: crates/bench/src/bin/custom.rs
//! ```

use std::fs;
use std::path::PathBuf;

use sj_lint::rules::RULES;

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// The virtual workspace path a fixture is linted as.
fn virtual_path(src: &str) -> &str {
    src.lines()
        .next()
        .and_then(|l| l.strip_prefix("//@ path:"))
        .map(str::trim)
        .expect("fixture must start with a `//@ path:` directive")
}

fn read_fixture(rule: &str, which: &str) -> String {
    let path = fixture_root().join(rule).join(which);
    fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()))
}

#[test]
fn every_rule_has_a_fixture_pair() {
    for rule in RULES {
        let dir = fixture_root().join(rule.name);
        assert!(
            dir.join("bad.rs").is_file(),
            "rule {} is missing tests/fixtures/{}/bad.rs",
            rule.name,
            rule.name
        );
        assert!(
            dir.join("good.rs").is_file(),
            "rule {} is missing tests/fixtures/{}/good.rs",
            rule.name,
            rule.name
        );
    }
}

#[test]
fn no_stray_fixture_directories() {
    let known: Vec<&str> = RULES.iter().map(|r| r.name).collect();
    for entry in fs::read_dir(fixture_root()).expect("fixture root exists") {
        let entry = entry.expect("fixture root is readable");
        let name = entry.file_name().to_string_lossy().into_owned();
        assert!(
            known.contains(&name.as_str()),
            "fixture directory {name:?} does not correspond to any rule"
        );
    }
}

#[test]
fn bad_fixtures_trip_exactly_their_rule() {
    for rule in RULES {
        let src = read_fixture(rule.name, "bad.rs");
        let diags = sj_lint::lint_str(virtual_path(&src), &src)
            .unwrap_or_else(|e| panic!("{}/bad.rs: config error: {e}", rule.name));
        assert!(
            diags.iter().any(|d| d.rule == rule.name),
            "{}/bad.rs did not trip {}: got {diags:?}",
            rule.name,
            rule.name
        );
        for d in &diags {
            assert_eq!(
                d.rule, rule.name,
                "{}/bad.rs trips an unrelated rule: {d:?}",
                rule.name
            );
        }
    }
}

#[test]
fn good_fixtures_lint_clean() {
    for rule in RULES {
        let src = read_fixture(rule.name, "good.rs");
        let diags = sj_lint::lint_str(virtual_path(&src), &src)
            .unwrap_or_else(|e| panic!("{}/good.rs: config error: {e}", rule.name));
        assert!(
            diags.is_empty(),
            "{}/good.rs is not clean: {diags:?}",
            rule.name
        );
    }
}
