//! Space partitioning for [`crate::par::ExecMode::Partitioned`]: tile
//! geometry, extent replication, and the reference-point rule.
//!
//! This module is pure geometry and bookkeeping — no threads. The
//! thread-spawning tiled executors live in [`crate::par`] (the only module
//! allowed to spawn; sj-lint's `bare-thread-spawn` rule enforces it).
//!
//! ## The scheme (DESIGN.md §13)
//!
//! The data space is split into an `nx × ny` grid of `N` tiles
//! ([`TileGrid`]). Every point owns one **canonical tile** — the tile its
//! coordinates fall in ([`TileGrid::tile_of`]) — but is **replicated** into
//! every tile its query region (the centred square of side `query_side`,
//! clipped to the space) overlaps ([`replicate_by_extent`]); queriers are
//! assigned to tiles by the same extent rule. Each tile then joins its
//! local replicas independently, which double-reports any pair whose two
//! sides straddle a boundary. The **reference-point rule** restores
//! exactness: tile `T` emits a pair `(a, b)` only if `b`'s canonical tile
//! is `T`. Coverage and uniqueness both follow from one fact — the
//! per-axis tile index is a monotone function of the coordinate — so the
//! covered index range of a region contains the canonical tile of every
//! point inside it:
//!
//! - *coverage*: `b ∈ region(a)` puts `tile_of(b)` inside
//!   `cover(region(a))`, so querier `a` visits `tile_of(b)`, where `b` is
//!   resident (its own region contains it); the pair is found there;
//! - *uniqueness*: the filter accepts it in `tile_of(b)` and nowhere else.
//!
//! Checksums are unperturbed because each pair is emitted exactly once with
//! its *global* ids ([`TileReplica::to_global`]) and the driver's checksum
//! fold is a commutative wrapping sum — any partition of the pair set
//! merges back to the sequential value bit for bit.

use std::num::NonZeroUsize;

use crate::geom::Rect;
use crate::table::{entry_id, EntryId, ExtentTable, PointTable};

/// Factor `tiles` into the most nearly square `nx × ny` grid: `ny` is the
/// largest divisor not exceeding `√tiles`, so `nx ≥ ny` and `nx·ny ==
/// tiles` exactly (a prime count degenerates to an `n × 1` strip).
fn grid_dims(tiles: usize) -> (usize, usize) {
    let mut d = 1;
    let mut k = 1;
    while k * k <= tiles {
        if tiles.is_multiple_of(k) {
            d = k;
        }
        k += 1;
    }
    (tiles / d, d)
}

/// Per-axis tile index of a coordinate at `offset` from the space origin.
/// `as usize` saturates, so negatives and NaN (a degenerate zero-width
/// axis divides 0/0) land in tile 0 and `+inf` in the last tile — every
/// input gets a tile, and the map stays monotone in `offset`.
#[inline]
fn axis_index(offset: f32, tile_len: f32, n: usize) -> usize {
    ((offset / tile_len) as usize).min(n - 1)
}

/// An `nx × ny` tiling of the data space, row-major tile ids `0..tiles`.
///
/// A point exactly on an interior tile edge belongs to the higher-indexed
/// tile (floor semantics), mirroring how [`crate::geom::Rect`]'s closed
/// containment ties are broken everywhere else in the workspace: the
/// assignment is a pure function of the coordinates, identical on every
/// side of the join, which is all the reference-point rule needs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TileGrid {
    bounds: Rect,
    nx: usize,
    ny: usize,
    tile_w: f32,
    tile_h: f32,
}

impl TileGrid {
    /// Tile `space` into exactly `tiles` rectangles (see `grid_dims`).
    pub fn new(space: &Rect, tiles: NonZeroUsize) -> TileGrid {
        let (nx, ny) = grid_dims(tiles.get());
        TileGrid {
            bounds: *space,
            nx,
            ny,
            tile_w: space.width() / nx as f32,
            tile_h: space.height() / ny as f32,
        }
    }

    /// Total number of tiles (`nx · ny`, exactly the requested count).
    #[inline]
    pub fn tiles(&self) -> usize {
        self.nx * self.ny
    }

    #[inline]
    pub fn nx(&self) -> usize {
        self.nx
    }

    #[inline]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// The tiled space.
    #[inline]
    pub fn bounds(&self) -> &Rect {
        &self.bounds
    }

    /// Canonical tile of a point — the reference point of the dedup rule.
    #[inline]
    pub fn tile_of(&self, x: f32, y: f32) -> usize {
        let ix = axis_index(x - self.bounds.x1, self.tile_w, self.nx);
        let iy = axis_index(y - self.bounds.y1, self.tile_h, self.ny);
        iy * self.nx + ix
    }

    /// Every tile `region` overlaps, as the rectangle of per-axis index
    /// ranges of its corners. Because `axis_index` is monotone, this
    /// range contains [`TileGrid::tile_of`] of every point in `region` —
    /// the containment [`replicate_by_extent`] and querier assignment
    /// rely on.
    pub fn cover(&self, region: &Rect) -> TileCover {
        let ix0 = axis_index(region.x1 - self.bounds.x1, self.tile_w, self.nx);
        let ix1 = axis_index(region.x2 - self.bounds.x1, self.tile_w, self.nx);
        let iy0 = axis_index(region.y1 - self.bounds.y1, self.tile_h, self.ny);
        let iy1 = axis_index(region.y2 - self.bounds.y1, self.tile_h, self.ny);
        TileCover {
            nx: self.nx,
            ix0,
            ix1,
            iy1,
            ix: ix0,
            iy: iy0,
        }
    }

    /// Geometric bounds of tile `t` (the last row/column absorbs any
    /// floating-point remainder so the tiles exactly cover the space).
    pub fn tile_bounds(&self, t: usize) -> Rect {
        let (ix, iy) = (t % self.nx, t / self.nx);
        let x1 = self.bounds.x1 + ix as f32 * self.tile_w;
        let y1 = self.bounds.y1 + iy as f32 * self.tile_h;
        let x2 = if ix + 1 == self.nx {
            self.bounds.x2
        } else {
            self.bounds.x1 + (ix + 1) as f32 * self.tile_w
        };
        let y2 = if iy + 1 == self.ny {
            self.bounds.y2
        } else {
            self.bounds.y1 + (iy + 1) as f32 * self.tile_h
        };
        Rect::new(x1, y1, x2.max(x1), y2.max(y1))
    }
}

/// Iterator over the row-major tile ids of a [`TileGrid::cover`] range.
pub struct TileCover {
    nx: usize,
    ix0: usize,
    ix1: usize,
    iy1: usize,
    ix: usize,
    iy: usize,
}

impl Iterator for TileCover {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.iy > self.iy1 {
            return None;
        }
        let t = self.iy * self.nx + self.ix;
        if self.ix < self.ix1 {
            self.ix += 1;
        } else {
            self.ix = self.ix0;
            self.iy += 1;
        }
        Some(t)
    }
}

/// One tile's local view of a relation: the replicated live rows as a
/// fresh [`PointTable`] (so indexes and batch joins run on it unchanged)
/// plus the local-row → global-handle map that translates emitted pairs
/// back into driver ids. Tombstoned rows are never replicated — a row
/// that dies simply vanishes from every replica set at the next
/// partition, exactly as it vanishes from a sequential rebuild.
#[derive(Debug, Default)]
pub struct TileReplica {
    pub table: PointTable,
    pub to_global: Vec<EntryId>,
}

impl TileReplica {
    /// Drop all rows, keeping allocated capacity for the next tick.
    pub fn clear(&mut self) {
        self.table.clear();
        self.to_global.clear();
    }

    fn push(&mut self, x: f32, y: f32, global: EntryId) {
        self.table.push(x, y);
        self.to_global.push(global);
    }

    /// Global handle of local row `local`.
    #[inline]
    pub fn global(&self, local: EntryId) -> EntryId {
        self.to_global[local as usize]
    }
}

/// Partition `table`'s **live** rows into per-tile replicas: each row goes
/// to every tile its clipped query region (centred square of side
/// `query_side`) overlaps. `replicas` is resized to the grid and reused
/// across ticks — steady-state partitioning allocates nothing.
pub fn replicate_by_extent(
    table: &PointTable,
    grid: &TileGrid,
    query_side: f32,
    replicas: &mut Vec<TileReplica>,
) {
    replicas.resize_with(grid.tiles(), TileReplica::default);
    for r in replicas.iter_mut() {
        r.clear();
    }
    let xs = table.xs();
    let ys = table.ys();
    let live = table.live_mask();
    let all_live = table.all_live();
    for i in 0..xs.len() {
        if !all_live && !live[i] {
            continue;
        }
        let region = Rect::centered_square(crate::geom::Point::new(xs[i], ys[i]), query_side)
            .clipped_to(grid.bounds());
        for t in grid.cover(&region) {
            replicas[t].push(xs[i], ys[i], entry_id(i));
        }
    }
}

/// One tile's local view of an **extent** relation — the `intersects`
/// counterpart of [`TileReplica`]. A rectangle is replicated into every
/// tile of [`TileGrid::cover`] of the rectangle itself (its extent *is*
/// its query region in the rect self-join), and the reference-point rule
/// generalizes: a pair `(q, r)` is emitted only by the tile containing
/// the lower-left corner of the pairwise intersection,
/// `(max(q.x1, r.x1), max(q.y1, r.y1))`. Because `axis_index` is
/// monotone, `axis_index(max(a, b)) = max(axis_index(a), axis_index(b))`,
/// so that corner's tile lies in both rectangles' covers — both replicas
/// are resident there (coverage), and no other tile passes the filter
/// (uniqueness).
#[derive(Debug, Default)]
pub struct ExtentReplica {
    pub table: ExtentTable,
    pub to_global: Vec<EntryId>,
}

impl ExtentReplica {
    /// Drop all rows, keeping allocated capacity for the next tick.
    pub fn clear(&mut self) {
        self.table.clear();
        self.to_global.clear();
    }

    fn push(&mut self, rect: Rect, global: EntryId) {
        self.table.push(rect);
        self.to_global.push(global);
    }

    /// Global handle of local row `local`.
    #[inline]
    pub fn global(&self, local: EntryId) -> EntryId {
        self.to_global[local as usize]
    }
}

/// Partition `table`'s **live** rectangles into per-tile replicas: each
/// rect goes to every tile it overlaps. `replicas` is resized to the grid
/// and reused across ticks, mirroring [`replicate_by_extent`].
pub fn replicate_extents(table: &ExtentTable, grid: &TileGrid, replicas: &mut Vec<ExtentReplica>) {
    replicas.resize_with(grid.tiles(), ExtentReplica::default);
    for r in replicas.iter_mut() {
        r.clear();
    }
    let (x1s, y1s) = (table.x1s(), table.y1s());
    let (x2s, y2s) = (table.x2s(), table.y2s());
    let live = table.live_mask();
    let all_live = table.all_live();
    for i in 0..x1s.len() {
        if !all_live && !live[i] {
            continue;
        }
        let rect = Rect::new(x1s[i], y1s[i], x2s[i], y2s[i]);
        for t in grid.cover(&rect) {
            replicas[t].push(rect, entry_id(i));
        }
    }
}

/// Queriers per mini-join chunk. Small enough that a hotspot tile's work
/// splits into many schedulable pieces, large enough that the shared
/// cursor's `fetch_add` is noise next to the probes it buys.
pub const MINI_JOIN_CHUNK: usize = 64;

/// One unit of schedulable query work: queriers `start..end` of tile
/// `tile`'s assignment list. The pooled executors in [`crate::par`] push
/// these onto a shared queue and let any worker drain any tile — which is
/// sound because the reference-point rule makes every chunk's `(pairs,
/// checksum)` partial independent of which thread computes it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MiniJoin {
    pub tile: usize,
    pub start: usize,
    pub end: usize,
}

/// Decompose per-tile work-list lengths into [`MiniJoin`]s of at most
/// `chunk` queriers each, appended to `out` (callers clear and reuse the
/// buffer across ticks). Empty tiles contribute no chunks, so the queue
/// length — not the tile count — bounds useful worker parallelism.
pub fn chunk_mini_joins<I>(lens: I, chunk: usize, out: &mut Vec<MiniJoin>)
where
    I: IntoIterator<Item = usize>,
{
    let chunk = chunk.max(1);
    for (tile, len) in lens.into_iter().enumerate() {
        let mut start = 0;
        while start < len {
            let end = (start + chunk).min(len);
            out.push(MiniJoin { tile, start, end });
            start = end;
        }
    }
}

/// Target live rows per tile of the adaptive (`@tilesauto`) policy.
pub const AUTO_TARGET_PER_TILE: usize = 2048;

/// Upper bound of the adaptive tile count (matches the largest grid the
/// fixed-count tests exercise; beyond it replication overhead dominates).
pub const AUTO_MAX_TILES: usize = 64;

/// Sample budget of the density histogram: rows are visited at a stride
/// chosen so at most this many contribute.
const AUTO_SAMPLE: usize = 4096;

/// Histogram resolution per axis (8 × 8 bins).
const AUTO_BINS: usize = 8;

/// Hotspot threshold: if the fullest bin holds at least this many times
/// the mean bin, the distribution is skewed enough that finer
/// tiles pay for themselves (more mini-joins to steal from the hotspot).
const AUTO_SKEW_THRESHOLD: f64 = 4.0;

/// Pick a tile count from the observed data: `live / 2048` as the base
/// (clamped to `1..=64`), doubled when a strided-sample density histogram
/// shows a hotspot, and capped so no tile axis is narrower than the query
/// extent (tiles thinner than a query replicate nearly every row into
/// several tiles, which costs more than the parallelism returns).
///
/// The policy is deterministic — strided sampling, no RNG — and the result
/// only sizes the grid: the reference-point rule makes join results
/// tile-count-invariant, so adaptive runs stay bit-identical to sequential
/// whatever count this picks.
pub fn auto_tile_count(table: &PointTable, space: &Rect, query_side: f32) -> NonZeroUsize {
    let mut count = (table.live_len() / AUTO_TARGET_PER_TILE).clamp(1, AUTO_MAX_TILES);
    if sampled_skew(table, space) >= AUTO_SKEW_THRESHOLD {
        count = (count * 2).min(AUTO_MAX_TILES);
    }
    let min_side = space.width().min(space.height());
    let axis_cap = ((min_side / query_side.max(1e-6)) as usize).clamp(1, AUTO_BINS);
    let cap = (axis_cap * axis_cap).min(AUTO_MAX_TILES);
    NonZeroUsize::new(count.min(cap).max(1)).expect("clamped to at least one tile")
}

/// Adaptive tile count for an extent relation: the plain population rule
/// (`live / 2048`, clamped to `1..=64`) without the skew/width heuristics
/// of [`auto_tile_count`] — extents carry their own query region, so
/// there is no `query_side` to cap the axis with, and the population term
/// alone keeps adaptive runs deterministic and bit-identical (the
/// reference-point rule makes results tile-count-invariant).
pub fn auto_tile_count_extents(table: &ExtentTable) -> NonZeroUsize {
    let count = (table.live_len() / AUTO_TARGET_PER_TILE).clamp(1, AUTO_MAX_TILES);
    NonZeroUsize::new(count).expect("clamped to at least one tile")
}

/// Ratio of the fullest histogram bin to the mean bin, from a strided
/// sample of the live rows binned into an 8 × 8 grid over `space`. The
/// mean is over **all** bins, not just occupied ones: empty bins become
/// idle tiles, which is precisely the imbalance the metric must see —
/// all mass in one corner bin is the most skewed case of all, and a
/// mean-over-occupied denominator would read it as perfectly uniform.
/// `1.0` when the table is empty.
fn sampled_skew(table: &PointTable, space: &Rect) -> f64 {
    let n = table.len();
    if n == 0 {
        return 1.0;
    }
    let stride = n.div_ceil(AUTO_SAMPLE).max(1);
    let (xs, ys) = (table.xs(), table.ys());
    let live = table.live_mask();
    let all_live = table.all_live();
    let (w, h) = (space.width().max(1e-6), space.height().max(1e-6));
    let mut bins = [0u32; AUTO_BINS * AUTO_BINS];
    for i in (0..n).step_by(stride) {
        if !all_live && !live[i] {
            continue;
        }
        let bx = (((xs[i] - space.x1) / w * AUTO_BINS as f32) as usize).min(AUTO_BINS - 1);
        let by = (((ys[i] - space.y1) / h * AUTO_BINS as f32) as usize).min(AUTO_BINS - 1);
        bins[by * AUTO_BINS + bx] += 1;
    }
    let mut max = 0u32;
    let mut sum = 0u64;
    for &b in &bins {
        max = max.max(b);
        sum += u64::from(b);
    }
    if sum == 0 {
        return 1.0;
    }
    f64::from(max) / (sum as f64 / bins.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Point;
    use crate::rng::Xoshiro256;

    fn tiles(n: usize) -> NonZeroUsize {
        NonZeroUsize::new(n).unwrap()
    }

    #[test]
    fn grid_dims_factor_exactly_and_nearly_square() {
        assert_eq!(grid_dims(1), (1, 1));
        assert_eq!(grid_dims(2), (2, 1));
        assert_eq!(grid_dims(4), (2, 2));
        assert_eq!(grid_dims(5), (5, 1));
        assert_eq!(grid_dims(8), (4, 2));
        assert_eq!(grid_dims(12), (4, 3));
        assert_eq!(grid_dims(16), (4, 4));
        for n in 1..=64 {
            let (nx, ny) = grid_dims(n);
            assert_eq!(nx * ny, n, "n = {n}");
            assert!(nx >= ny, "n = {n}");
        }
    }

    #[test]
    fn tile_of_is_total_and_in_range() {
        let g = TileGrid::new(&Rect::space(100.0), tiles(6));
        let mut rng = Xoshiro256::seeded(3);
        for _ in 0..1000 {
            let (x, y) = (rng.range_f32(0.0, 100.0), rng.range_f32(0.0, 100.0));
            assert!(g.tile_of(x, y) < g.tiles());
        }
        // Space corners, including the closed upper boundary.
        assert_eq!(g.tile_of(0.0, 0.0), 0);
        assert_eq!(g.tile_of(100.0, 100.0), g.tiles() - 1);
    }

    #[test]
    fn edge_points_belong_to_the_higher_tile() {
        // 2 × 2 over [0,100]²: the interior edges are x = 50 and y = 50.
        let g = TileGrid::new(&Rect::space(100.0), tiles(4));
        assert_eq!((g.nx(), g.ny()), (2, 2));
        assert_eq!(g.tile_of(49.999, 10.0), 0);
        assert_eq!(g.tile_of(50.0, 10.0), 1, "x tie goes right");
        assert_eq!(g.tile_of(10.0, 50.0), 2, "y tie goes up");
        assert_eq!(g.tile_of(50.0, 50.0), 3, "corner tie goes up-right");
    }

    #[test]
    fn cover_contains_the_canonical_tile_of_every_contained_point() {
        // The monotonicity property the reference-point proof stands on.
        let space = Rect::space(1_000.0);
        let mut rng = Xoshiro256::seeded(7);
        for n in [1usize, 2, 3, 4, 5, 7, 16, 64] {
            let g = TileGrid::new(&space, tiles(n));
            for _ in 0..200 {
                let c = Point::new(rng.range_f32(0.0, 1_000.0), rng.range_f32(0.0, 1_000.0));
                let region = Rect::centered_square(c, rng.range_f32(0.0, 400.0)).clipped_to(&space);
                let covered: Vec<usize> = g.cover(&region).collect();
                for _ in 0..20 {
                    let p = Point::new(
                        rng.range_f32(region.x1, region.x2),
                        rng.range_f32(region.y1, region.y2),
                    );
                    assert!(
                        covered.contains(&g.tile_of(p.x, p.y)),
                        "tiles = {n}, region = {region:?}, p = {p:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn cover_of_a_straddling_region_lists_each_tile_once() {
        let g = TileGrid::new(&Rect::space(100.0), tiles(4));
        // Straddles both interior edges: all four tiles, each exactly once.
        let four: Vec<usize> = g
            .cover(&Rect::centered_square(Point::new(50.0, 50.0), 10.0))
            .collect();
        assert_eq!(four, vec![0, 1, 2, 3]);
        // Straddles only the vertical edge: two tiles.
        let two: Vec<usize> = g
            .cover(&Rect::centered_square(Point::new(50.0, 20.0), 10.0))
            .collect();
        assert_eq!(two, vec![0, 1]);
        // Interior to one tile.
        let one: Vec<usize> = g
            .cover(&Rect::centered_square(Point::new(20.0, 20.0), 10.0))
            .collect();
        assert_eq!(one, vec![0]);
    }

    #[test]
    fn tile_bounds_partition_the_space() {
        for n in [1usize, 2, 4, 5, 6, 16] {
            let space = Rect::space(100.0);
            let g = TileGrid::new(&space, tiles(n));
            let mut area = 0.0;
            for t in 0..g.tiles() {
                let b = g.tile_bounds(t);
                assert!(space.contains_rect(&b), "tiles = {n}, t = {t}");
                assert!(b.contains_point((b.x1 + b.x2) * 0.5, (b.y1 + b.y2) * 0.5));
                area += b.area();
            }
            assert!(
                (area - space.area()).abs() < 1.0,
                "tiles = {n}: area {area}"
            );
        }
    }

    #[test]
    fn canonical_tile_bounds_contain_their_points_off_the_shared_edges() {
        // Interior points map to the tile whose rectangle holds them; on a
        // shared edge both rectangles contain the point (closed rects) and
        // tile_of picks the higher one deterministically.
        let g = TileGrid::new(&Rect::space(100.0), tiles(4));
        let mut rng = Xoshiro256::seeded(11);
        for _ in 0..500 {
            let (x, y) = (rng.range_f32(0.0, 100.0), rng.range_f32(0.0, 100.0));
            let b = g.tile_bounds(g.tile_of(x, y));
            assert!(b.contains_point(x, y), "({x}, {y}) not in {b:?}");
        }
    }

    #[test]
    fn replication_covers_the_home_tile_and_skips_tombstones() {
        let space = Rect::space(100.0);
        let g = TileGrid::new(&space, tiles(4));
        let mut t = PointTable::default();
        let a = t.push(20.0, 20.0); // interior to tile 0
        let b = t.push(50.0, 50.0); // center: replicated everywhere
        let dead = t.push(80.0, 80.0);
        t.remove(dead);

        let mut replicas = Vec::new();
        replicate_by_extent(&t, &g, 10.0, &mut replicas);
        assert_eq!(replicas.len(), 4);

        // Every live row is resident in its canonical tile.
        for (id, p) in t.iter() {
            let home = g.tile_of(p.x, p.y);
            assert!(
                replicas[home].to_global.contains(&id),
                "row {id} missing from home tile {home}"
            );
        }
        // The straddler is in all four replica sets; the corner point in one.
        for r in &replicas {
            assert!(r.to_global.contains(&b));
            assert_eq!(r.table.len(), r.to_global.len());
            assert!(r.table.all_live(), "replicas hold live rows only");
        }
        assert_eq!(
            replicas.iter().filter(|r| r.to_global.contains(&a)).count(),
            1
        );
        // The tombstone is nowhere — including the tile it used to live in.
        for r in &replicas {
            assert!(!r.to_global.contains(&dead));
        }
    }

    #[test]
    fn replication_reuses_buffers_across_ticks() {
        let space = Rect::space(100.0);
        let g = TileGrid::new(&space, tiles(2));
        let mut t = PointTable::default();
        for i in 0..10 {
            t.push(i as f32 * 10.0, 50.0);
        }
        let mut replicas = Vec::new();
        replicate_by_extent(&t, &g, 8.0, &mut replicas);
        let first: Vec<usize> = replicas.iter().map(|r| r.table.len()).collect();
        // Repartitioning the same table must reproduce the same replica
        // sets (no stale rows from the previous tick).
        replicate_by_extent(&t, &g, 8.0, &mut replicas);
        let second: Vec<usize> = replicas.iter().map(|r| r.table.len()).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn mini_join_chunks_cover_every_querier_exactly_once() {
        let mut out = Vec::new();
        chunk_mini_joins([130usize, 0, 64, 1], 64, &mut out);
        assert_eq!(
            out,
            vec![
                MiniJoin {
                    tile: 0,
                    start: 0,
                    end: 64
                },
                MiniJoin {
                    tile: 0,
                    start: 64,
                    end: 128
                },
                MiniJoin {
                    tile: 0,
                    start: 128,
                    end: 130
                },
                MiniJoin {
                    tile: 2,
                    start: 0,
                    end: 64
                },
                MiniJoin {
                    tile: 3,
                    start: 0,
                    end: 1
                },
            ]
        );
        // The empty tile contributes no chunk; totals reconstruct the lens.
        let mut per_tile = [0usize; 4];
        for m in &out {
            per_tile[m.tile] += m.end - m.start;
        }
        assert_eq!(per_tile, [130, 0, 64, 1]);
    }

    #[test]
    fn mini_join_chunking_tolerates_a_zero_chunk_size() {
        let mut out = Vec::new();
        chunk_mini_joins([3usize], 0, &mut out);
        assert_eq!(out.len(), 3, "degenerate chunk size falls back to 1");
    }

    #[test]
    fn auto_tile_count_tracks_the_live_population() {
        let space = Rect::space(100_000.0);
        let mut t = PointTable::default();
        assert_eq!(auto_tile_count(&t, &space, 10.0).get(), 1, "empty table");
        let mut rng = Xoshiro256::seeded(5);
        for _ in 0..AUTO_TARGET_PER_TILE * 8 {
            t.push(rng.range_f32(0.0, 100_000.0), rng.range_f32(0.0, 100_000.0));
        }
        let n = auto_tile_count(&t, &space, 10.0).get();
        assert_eq!(n, 8, "uniform 8×target rows → 8 tiles, no skew doubling");
        // Tombstoning half the rows halves the live count and the grid.
        for i in 0..t.len() {
            if i % 2 == 0 {
                t.remove(entry_id(i));
            }
        }
        assert_eq!(auto_tile_count(&t, &space, 10.0).get(), 4);
    }

    #[test]
    fn auto_tile_count_doubles_under_skew_and_respects_the_cap() {
        let space = Rect::space(100_000.0);
        let mut rng = Xoshiro256::seeded(9);
        // All mass in one corner bin: maximal skew.
        let mut t = PointTable::default();
        for _ in 0..AUTO_TARGET_PER_TILE * 8 {
            t.push(rng.range_f32(0.0, 1_000.0), rng.range_f32(0.0, 1_000.0));
        }
        assert_eq!(
            auto_tile_count(&t, &space, 10.0).get(),
            16,
            "hotspot doubles the uniform count"
        );
        // The cap binds: even a huge skewed table stays at AUTO_MAX_TILES.
        let mut big = PointTable::default();
        for _ in 0..AUTO_TARGET_PER_TILE * 80 {
            big.push(rng.range_f32(0.0, 1_000.0), rng.range_f32(0.0, 1_000.0));
        }
        assert_eq!(auto_tile_count(&big, &space, 10.0).get(), AUTO_MAX_TILES);
    }

    #[test]
    fn auto_tile_count_never_makes_tiles_narrower_than_the_query() {
        // Space 100 wide, queries 30 wide: at most 3 tiles per axis → 9
        // total (then squared-cap rounding keeps it ≤ 9), regardless of
        // how many rows there are.
        let space = Rect::space(100.0);
        let mut rng = Xoshiro256::seeded(13);
        let mut t = PointTable::default();
        for _ in 0..AUTO_TARGET_PER_TILE * 32 {
            t.push(rng.range_f32(0.0, 100.0), rng.range_f32(0.0, 100.0));
        }
        assert!(auto_tile_count(&t, &space, 30.0).get() <= 9);
        // A degenerate zero query side must not divide by zero.
        assert!(auto_tile_count(&t, &space, 0.0).get() >= 1);
    }

    #[test]
    fn extent_replication_covers_every_overlapped_tile_and_skips_tombstones() {
        let space = Rect::space(100.0);
        let g = TileGrid::new(&space, tiles(4));
        let mut t = ExtentTable::default();
        let a = t.push(Rect::new(10.0, 10.0, 20.0, 20.0)); // interior to tile 0
        let b = t.push(Rect::new(45.0, 45.0, 55.0, 55.0)); // straddles all four
        let c = t.push(Rect::new(60.0, 10.0, 90.0, 20.0)); // interior to tile 1
        let dead = t.push(Rect::new(70.0, 70.0, 80.0, 80.0));
        t.remove(dead);

        let mut replicas = Vec::new();
        replicate_extents(&t, &g, &mut replicas);
        assert_eq!(replicas.len(), 4);

        let holding = |id: EntryId| {
            replicas
                .iter()
                .enumerate()
                .filter(|(_, r)| r.to_global.contains(&id))
                .map(|(t, _)| t)
                .collect::<Vec<_>>()
        };
        assert_eq!(holding(a), vec![0]);
        assert_eq!(holding(b), vec![0, 1, 2, 3]);
        assert_eq!(holding(c), vec![1]);
        assert!(holding(dead).is_empty());
        for r in &replicas {
            assert_eq!(r.table.len(), r.to_global.len());
            assert!(r.table.all_live(), "replicas hold live rows only");
        }
        // Replicated rows keep their full geometry.
        let local = replicas[3].to_global.iter().position(|&g| g == b).unwrap();
        assert_eq!(
            replicas[3].table.rect(entry_id(local)),
            Rect::new(45.0, 45.0, 55.0, 55.0)
        );
    }

    #[test]
    fn intersection_reference_point_lands_in_both_covers() {
        // The generalization the extent tiled executors stand on: for any
        // intersecting pair, the tile of (max(x1), max(y1)) is in both
        // rects' covers.
        let space = Rect::space(1_000.0);
        let mut rng = Xoshiro256::seeded(21);
        for n in [1usize, 2, 4, 5, 7, 16, 64] {
            let g = TileGrid::new(&space, tiles(n));
            for _ in 0..300 {
                let (ax, ay) = (rng.range_f32(0.0, 950.0), rng.range_f32(0.0, 950.0));
                let a = Rect::new(
                    ax,
                    ay,
                    ax + rng.range_f32(0.0, 50.0),
                    ay + rng.range_f32(0.0, 50.0),
                );
                let (bx, by) = (rng.range_f32(0.0, 950.0), rng.range_f32(0.0, 950.0));
                let b = Rect::new(
                    bx,
                    by,
                    bx + rng.range_f32(0.0, 50.0),
                    by + rng.range_f32(0.0, 50.0),
                );
                if !a.intersects(&b) {
                    continue;
                }
                let home = g.tile_of(a.x1.max(b.x1), a.y1.max(b.y1));
                let ca: Vec<usize> = g.cover(&a).collect();
                let cb: Vec<usize> = g.cover(&b).collect();
                assert!(ca.contains(&home), "tiles = {n}, a = {a:?}, b = {b:?}");
                assert!(cb.contains(&home), "tiles = {n}, a = {a:?}, b = {b:?}");
            }
        }
    }

    #[test]
    fn extent_auto_tile_count_tracks_the_live_population() {
        let mut t = ExtentTable::default();
        assert_eq!(auto_tile_count_extents(&t).get(), 1, "empty table");
        for i in 0..AUTO_TARGET_PER_TILE * 8 {
            let x = (i % 1000) as f32;
            t.push(Rect::new(x, x, x + 1.0, x + 1.0));
        }
        assert_eq!(auto_tile_count_extents(&t).get(), 8);
        for i in 0..t.len() {
            if i % 2 == 0 {
                t.remove(entry_id(i));
            }
        }
        assert_eq!(auto_tile_count_extents(&t).get(), 4);
    }

    #[test]
    fn oversharded_grids_leave_most_tiles_empty_but_lose_nothing() {
        let space = Rect::space(100.0);
        let g = TileGrid::new(&space, tiles(64));
        let mut t = PointTable::default();
        t.push(10.0, 10.0);
        t.push(90.0, 90.0);
        let mut replicas = Vec::new();
        replicate_by_extent(&t, &g, 1.0, &mut replicas);
        let populated = replicas.iter().filter(|r| !r.table.is_empty()).count();
        assert!((2..=8).contains(&populated));
        let total: usize = replicas.iter().map(|r| r.table.len()).sum();
        assert!(total >= 2);
    }
}
