//! The parallel query phase — a first-class execution mode, not a facade.
//!
//! The paper's setting is deliberately single-threaded ("even
//! single-threaded settings", §4); once the implementation is
//! cache-efficient, the remaining headroom is structural. Tsitsigkos &
//! Mamoulis ("Parallel In-Memory Evaluation of Spatial Joins") show
//! partition-parallel joins scale near-linearly on exactly the grid/sweep
//! techniques reproduced here, and the tick model makes the query phase
//! embarrassingly parallel: queries only *read* the index and the base
//! table, and the build/update phases stay sequential, so the previous-tick
//! semantics are untouched.
//!
//! Two sharding strategies cover the paper's two join categories
//! (DESIGN.md §8):
//!
//! - [`shard_index_query`] — the per-query category: the tick's querier
//!   list is split into `threads` contiguous chunks, each worker probes the
//!   shared (immutable) index for its chunk;
//! - [`shard_batch_join`] — the set-at-a-time category: the tick's query
//!   set is split into strips, each worker runs a full sweep over its strip
//!   on a private fork of the technique ([`BatchJoin::fork`]).
//!
//! Both merge per-worker `(pairs, checksum)` partials with `+` /
//! `wrapping_add`. The checksum fold ([`crate::driver::fold_pair`]) mixes
//! each pair and then wrapping-adds, so it is commutative and associative —
//! the merge is order-independent by construction, and the parallel result
//! is **bit-identical** to the sequential one for any shard boundaries and
//! any thread count (`tests/parallel_equivalence.rs` proves this for every
//! registry technique).
//!
//! Workers run on [`std::thread::scope`]: no runtime dependency, no
//! detached threads, borrows of the index and table flow straight in.

use std::num::NonZeroUsize;

use crate::batch::BatchJoin;
use crate::driver::fold_pair;
use crate::geom::Rect;
use crate::index::SpatialIndex;
use crate::table::{EntryId, PointTable};

/// How the driver executes a tick's query phase.
///
/// `Parallel` holds a [`NonZeroUsize`], so a zero-thread configuration is
/// unrepresentable — the old `run_join_parallel(.., threads: usize)` entry
/// point had to `assert!(threads > 0)` at runtime; this type moves that
/// guarantee to compile time. CLI layers reject `--threads 0` while
/// parsing (see `sj-bench`), before an `ExecMode` ever exists.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// The paper-faithful single-threaded query phase.
    #[default]
    Sequential,
    /// Query phase sharded over `threads` scoped workers. Results are
    /// bit-identical to [`ExecMode::Sequential`] (see module docs).
    Parallel { threads: NonZeroUsize },
}

impl ExecMode {
    /// Parallel execution over `threads` workers; `None` if `threads == 0`.
    pub const fn parallel(threads: usize) -> Option<ExecMode> {
        match NonZeroUsize::new(threads) {
            Some(threads) => Some(ExecMode::Parallel { threads }),
            None => None,
        }
    }

    /// Worker count: 1 for [`ExecMode::Sequential`].
    pub const fn threads(self) -> usize {
        match self {
            ExecMode::Sequential => 1,
            ExecMode::Parallel { threads } => threads.get(),
        }
    }

    pub const fn is_parallel(self) -> bool {
        matches!(self, ExecMode::Parallel { .. })
    }

    /// This mode unless it is [`ExecMode::Sequential`], in which case
    /// `fallback` — the precedence rule for layered configuration (a
    /// technique spec's `@par<N>` modifier over a CLI-wide `--threads`).
    pub const fn or(self, fallback: ExecMode) -> ExecMode {
        match self {
            ExecMode::Sequential => fallback,
            parallel => parallel,
        }
    }
}

impl std::fmt::Display for ExecMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecMode::Sequential => f.write_str("sequential"),
            ExecMode::Parallel { threads } => write!(f, "parallel({threads})"),
        }
    }
}

/// Split `len` work items into at most `threads` contiguous chunks.
fn chunk_size(len: usize, threads: NonZeroUsize) -> usize {
    len.div_ceil(threads.get()).max(1)
}

/// The per-query category's parallel query phase: shard `queriers` into
/// contiguous chunks, probe the shared `index` from each worker, and merge
/// the per-worker partials. Returns `(pairs, checksum)` — the checksum is
/// a delta starting from 0, to be `wrapping_add`ed onto the running total
/// (equivalent to folding every pair into that total directly, because the
/// fold is a commutative wrapping sum).
///
/// `data` is the table the index was built over; `centers` is the table
/// query regions are centred on. For a self-join they are the same table;
/// for a bipartite R ⋈ S join (`run_bipartite_join`), `centers` is the
/// query relation R and `data` the indexed data relation S.
///
/// Each worker computes its own query regions, exactly like the sequential
/// per-query executor: issuing a query, region arithmetic included, is part
/// of that category's per-query cost.
pub fn shard_index_query<I: SpatialIndex + Sync + ?Sized>(
    index: &I,
    data: &PointTable,
    centers: &PointTable,
    queriers: &[EntryId],
    space: &Rect,
    query_side: f32,
    threads: NonZeroUsize,
) -> (u64, u64) {
    let chunk = chunk_size(queriers.len(), threads);
    let shards: Vec<(u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = queriers
            .chunks(chunk)
            .map(|shard| {
                scope.spawn(move || {
                    let mut pairs = 0u64;
                    let mut checksum = 0u64;
                    for &q in shard {
                        let region =
                            Rect::centered_square(centers.point(q), query_side).clipped_to(space);
                        // Sink fold, like the sequential executor: no
                        // per-query result materialization in any shard.
                        index.for_each_in(data, &region, &mut |r| {
                            pairs += 1;
                            checksum = fold_pair(checksum, q, r);
                        });
                    }
                    (pairs, checksum)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("query shard panicked"))
            .collect()
    });
    merge(shards)
}

/// Reusable per-worker state for [`shard_batch_join`]: a private fork of
/// the technique ([`BatchJoin::fork`]) plus its output buffer. Callers
/// keep the vector alive across ticks, so steady-state parallel joins
/// fork and allocate nothing — mirroring the sequential executor's reused
/// pair buffer, and keeping one-time setup cost out of the timed query
/// phase after the first tick.
pub struct BatchWorker {
    join: Box<dyn BatchJoin + Send>,
    out: Vec<(EntryId, EntryId)>,
}

/// The set-at-a-time category's parallel query phase: partition the tick's
/// query set into contiguous strips and join each independently on its own
/// [`BatchWorker`] (private scratch, shared read-only base table; `workers`
/// grows on demand and is reused across calls). Returns `(pairs, checksum)`
/// with the same delta semantics as [`shard_index_query`]. `queriers` and
/// `data` are the two relation tables of [`BatchJoin::join_two`] — the
/// same table twice for a self-join.
///
/// Strips partition the query set, so the union of the strip joins is
/// exactly the full join and the commutative checksum merge reproduces the
/// sequential result bit for bit.
pub fn shard_batch_join<J: BatchJoin + ?Sized>(
    join: &J,
    queriers: &PointTable,
    data: &PointTable,
    queries: &[(EntryId, Rect)],
    threads: NonZeroUsize,
    workers: &mut Vec<BatchWorker>,
) -> (u64, u64) {
    let chunk = chunk_size(queries.len(), threads);
    let strips = queries.chunks(chunk);
    while workers.len() < strips.len() {
        // Fork on the spawning thread; each worker owns its instance, so
        // `J` itself needs no `Sync`.
        workers.push(BatchWorker {
            join: join.fork(),
            out: Vec::new(),
        });
    }
    let shards: Vec<(u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = strips
            .zip(workers.iter_mut())
            .map(|(strip, worker)| {
                scope.spawn(move || {
                    worker.out.clear();
                    worker.join.join_two(queriers, data, strip, &mut worker.out);
                    let mut checksum = 0u64;
                    for &(q, r) in &worker.out {
                        checksum = fold_pair(checksum, q, r);
                    }
                    (worker.out.len() as u64, checksum)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("batch strip panicked"))
            .collect()
    });
    merge(shards)
}

fn merge(shards: Vec<(u64, u64)>) -> (u64, u64) {
    let mut pairs = 0u64;
    let mut checksum = 0u64;
    for (p, c) in shards {
        pairs += p;
        checksum = checksum.wrapping_add(c);
    }
    (pairs, checksum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::NaiveBatchJoin;
    use crate::index::ScanIndex;
    use crate::rng::Xoshiro256;

    const SIDE: f32 = 1_000.0;

    fn threads(n: usize) -> NonZeroUsize {
        NonZeroUsize::new(n).unwrap()
    }

    fn random_table(n: usize, seed: u64) -> PointTable {
        let mut rng = Xoshiro256::seeded(seed);
        let mut t = PointTable::default();
        for _ in 0..n {
            t.push(rng.range_f32(0.0, SIDE), rng.range_f32(0.0, SIDE));
        }
        t
    }

    fn sequential_reference(
        table: &PointTable,
        queriers: &[EntryId],
        space: &Rect,
        query_side: f32,
    ) -> (u64, u64) {
        let idx = ScanIndex::new();
        let mut pairs = 0u64;
        let mut checksum = 0u64;
        for &q in queriers {
            let region = Rect::centered_square(table.point(q), query_side).clipped_to(space);
            idx.for_each_in(table, &region, &mut |r| {
                pairs += 1;
                checksum = fold_pair(checksum, q, r);
            });
        }
        (pairs, checksum)
    }

    #[test]
    fn sharded_index_query_matches_sequential_for_any_thread_count() {
        let table = random_table(500, 9);
        let queriers: Vec<EntryId> = (0..table.len() as EntryId).step_by(3).collect();
        let space = Rect::space(SIDE);
        let expect = sequential_reference(&table, &queriers, &space, 120.0);
        let idx = ScanIndex::new();
        for n in [1, 2, 3, 7, 16, 1000] {
            let got = shard_index_query(&idx, &table, &table, &queriers, &space, 120.0, threads(n));
            assert_eq!(got, expect, "threads = {n}");
        }
    }

    #[test]
    fn sharded_batch_join_matches_sequential_for_any_thread_count() {
        let table = random_table(400, 11);
        let space = Rect::space(SIDE);
        let queries: Vec<(EntryId, Rect)> = (0..table.len() as EntryId)
            .step_by(2)
            .map(|q| {
                (
                    q,
                    Rect::centered_square(table.point(q), 90.0).clipped_to(&space),
                )
            })
            .collect();
        let mut out = Vec::new();
        NaiveBatchJoin.join(&table, &queries, &mut out);
        let expect_pairs = out.len() as u64;
        let expect_checksum = out.iter().fold(0u64, |c, &(q, r)| fold_pair(c, q, r));
        // One scratch pool across all thread counts: reuse must not leak
        // state between calls.
        let mut workers = Vec::new();
        for n in [1, 2, 3, 7, 64] {
            let got = shard_batch_join(
                &NaiveBatchJoin,
                &table,
                &table,
                &queries,
                threads(n),
                &mut workers,
            );
            assert_eq!(got, (expect_pairs, expect_checksum), "threads = {n}");
        }
    }

    #[test]
    fn empty_querier_sets_are_fine() {
        let table = random_table(50, 1);
        let space = Rect::space(SIDE);
        let idx = ScanIndex::new();
        assert_eq!(
            shard_index_query(&idx, &table, &table, &[], &space, 50.0, threads(4)),
            (0, 0)
        );
        assert_eq!(
            shard_batch_join(
                &NaiveBatchJoin,
                &table,
                &table,
                &[],
                threads(4),
                &mut Vec::new()
            ),
            (0, 0)
        );
    }

    #[test]
    fn exec_mode_constructors_and_accessors() {
        assert_eq!(ExecMode::parallel(0), None);
        let par4 = ExecMode::parallel(4).unwrap();
        assert_eq!(par4.threads(), 4);
        assert!(par4.is_parallel());
        assert_eq!(ExecMode::Sequential.threads(), 1);
        assert!(!ExecMode::Sequential.is_parallel());
        assert_eq!(ExecMode::default(), ExecMode::Sequential);
        assert_eq!(format!("{par4}"), "parallel(4)");
        assert_eq!(format!("{}", ExecMode::Sequential), "sequential");
    }

    #[test]
    fn or_prefers_the_parallel_mode() {
        let par2 = ExecMode::parallel(2).unwrap();
        let par8 = ExecMode::parallel(8).unwrap();
        assert_eq!(ExecMode::Sequential.or(par2), par2);
        assert_eq!(par8.or(par2), par8);
        assert_eq!(
            ExecMode::Sequential.or(ExecMode::Sequential),
            ExecMode::Sequential
        );
    }
}
