//! Ablations beyond the paper (DESIGN.md §7):
//!
//! 1. The structure × algorithm cross product at bs = 4 / cps = 13 —
//!    isolates how much of the gain is layout vs. query algorithm
//!    (the paper only reports the cumulative path).
//! 2. Coordinate inlining (`Layout::InlineCoords`) on top of the tuned
//!    grid — the improvement the paper explicitly leaves on the table to
//!    preserve the secondary-index assumption.
//! 3. STR bulk load vs. incremental Guttman inserts for the R-tree —
//!    how much of "trees are fast" is the packing.
//! 4. Index nested loop vs. the index-free plane-sweep batch join across
//!    query rates — the specialized-join category of the original study.
//! 5. Rebuild-per-tick vs. incremental (u-Grid-style) maintenance across
//!    object speeds — the update-time category of the original study.
//! 6. Scalar vs. SIMD-filtered Binary Search — the data-parallel step the
//!    paper's "implementation matters" argument invites.
//! 7. The technique × workload cross product — representative techniques
//!    from every family against *every* registry workload, churn
//!    included: does the paper's ordering survive skew and population
//!    turnover?
//!
//! The head-to-head pairs come from registry specs
//! (`TechniqueSpec::…build`); only the cross-product sweeps of ablation
//! 1/2 assemble custom grids. Ablations 1–6 honor `--workload SPEC`
//! (default `uniform`); ablation 7 sweeps the whole workload registry.
//!
//! Run: `cargo run -p sj-bench --release --bin ablation [--ticks N] [--workload SPEC] [--csv|--json]`

use sj_bench::cli::CommonOpts;
use sj_bench::report::stats_line;
use sj_bench::table::{secs, Table};
use sj_bench::{grid_custom, run_workload, run_workload_spec};
use sj_core::driver::RunStats;
use sj_core::technique::TechniqueKind;
use sj_grid::{GridConfig, Layout, QueryAlgo};

/// Emit one JSON line (when `--json`) for a run of `label` in `section`.
fn report(
    opts: &CommonOpts,
    section: &str,
    label: &str,
    stats: &RunStats,
    sweep: Option<(&str, f64)>,
) {
    if opts.json {
        println!("{}", stats_line(section, label, sweep, stats));
    }
}

fn main() {
    let opts = CommonOpts::parse();
    opts.require_self_join("ablation");
    if let Some(spec) = opts.technique {
        // the ablations compare fixed technique pairs; a single-technique override cannot be honored.
        eprintln!(
            "--technique {} is not supported by this binary",
            spec.name()
        );
        std::process::exit(2);
    }
    let params = opts.uniform_params();
    let wspec = opts.workload_spec();
    let exec = opts.exec_mode();

    if !opts.json {
        println!("# Ablation 1: layout x query algorithm (bs=4, cps=13)");
    }
    let mut t = Table::new(vec!["layout", "algorithm", "avg_time_per_tick_s"]);
    for layout in [Layout::Original, Layout::Inline] {
        for algo in [QueryAlgo::FullScan, QueryAlgo::RangeScan] {
            let cfg = GridConfig {
                cells_per_side: GridConfig::ORIGINAL_CPS,
                bucket_size: GridConfig::ORIGINAL_BS,
                layout,
                query_algo: algo,
            };
            let stats = run_workload(
                wspec,
                &params,
                &mut grid_custom(cfg, params.space_side),
                exec,
            );
            report(
                &opts,
                "ablation1",
                &format!("{layout:?}/{algo:?}"),
                &stats,
                None,
            );
            if !opts.json {
                t.row(vec![
                    format!("{layout:?}"),
                    format!("{algo:?}"),
                    secs(stats.avg_tick_seconds()),
                ]);
            }
        }
    }
    if !opts.json {
        println!("{}", t.render(opts.csv));
    }

    if !opts.json {
        println!("# Ablation 2: coordinate inlining on the tuned grid");
    }
    let mut t = Table::new(vec!["variant", "avg_tick_s", "build_s", "query_s"]);
    for (label, layout) in [
        ("tuned (secondary index)", Layout::Inline),
        ("tuned + inline coords", Layout::InlineCoords),
    ] {
        let cfg = GridConfig {
            layout,
            ..GridConfig::tuned()
        };
        let stats = run_workload(
            wspec,
            &params,
            &mut grid_custom(cfg, params.space_side),
            exec,
        );
        report(&opts, "ablation2", label, &stats, None);
        if !opts.json {
            t.row(vec![
                label.to_string(),
                secs(stats.avg_tick_seconds()),
                secs(stats.avg_build_seconds()),
                secs(stats.avg_query_seconds()),
            ]);
        }
    }
    if !opts.json {
        println!("{}", t.render(opts.csv));
    }

    if !opts.json {
        println!("# Ablation 3: STR bulk load vs incremental Guttman R-tree");
    }
    let mut t = Table::new(vec!["variant", "avg_tick_s", "build_s", "query_s"]);
    for (label, spec) in [
        ("STR bulk load", TechniqueKind::RTreeStr.spec()),
        (
            "incremental (quadratic split)",
            TechniqueKind::RTreeDyn.spec(),
        ),
    ] {
        let stats = run_workload_spec(wspec, &params, spec, exec);
        report(&opts, "ablation3", &spec.name(), &stats, None);
        if !opts.json {
            t.row(vec![
                label.to_string(),
                secs(stats.avg_tick_seconds()),
                secs(stats.avg_build_seconds()),
                secs(stats.avg_query_seconds()),
            ]);
        }
    }
    if !opts.json {
        println!("{}", t.render(opts.csv));
    }

    if !opts.json {
        println!("# Ablation 4: index nested loop vs plane-sweep batch join");
    }
    let mut t = Table::new(vec![
        "frac_queriers",
        "tuned_grid_s",
        "rtree_s",
        "plane_sweep_s",
    ]);
    for frac in [0.1f32, 0.5, 0.9] {
        let p = sj_workload::WorkloadParams {
            frac_queriers: frac,
            ..params
        };
        let mut row = vec![format!("{frac}")];
        for spec in [
            TechniqueKind::Grid(sj_grid::Stage::CpsTuned).spec(),
            TechniqueKind::RTreeStr.spec(),
            TechniqueKind::Sweep.spec(),
        ] {
            let stats = run_workload_spec(wspec, &p, spec, exec);
            report(
                &opts,
                "ablation4",
                &spec.name(),
                &stats,
                Some(("frac_queriers", frac as f64)),
            );
            if !opts.json {
                row.push(secs(stats.avg_tick_seconds()));
            }
        }
        if !opts.json {
            t.row(row);
        }
    }
    if !opts.json {
        println!("{}", t.render(opts.csv));
    }

    if !opts.json {
        println!("# Ablation 5: rebuild-per-tick vs incremental grid maintenance");
    }
    let mut t = Table::new(vec!["max_speed", "rebuild_build_s", "incremental_build_s"]);
    for speed in [50.0f32, 200.0, 800.0] {
        let p = sj_workload::WorkloadParams {
            max_speed: speed,
            ..params
        };
        let mut row = vec![format!("{speed}")];
        for spec in [
            TechniqueKind::Grid(sj_grid::Stage::CpsTuned).spec(),
            TechniqueKind::GridIncremental.spec(),
        ] {
            let stats = run_workload_spec(wspec, &p, spec, exec);
            report(
                &opts,
                "ablation5",
                &spec.name(),
                &stats,
                Some(("max_speed", speed as f64)),
            );
            if !opts.json {
                row.push(secs(stats.avg_build_seconds()));
            }
        }
        if !opts.json {
            t.row(row);
        }
    }
    if !opts.json {
        println!("{}", t.render(opts.csv));
    }

    if !opts.json {
        println!("# Ablation 6: scalar vs vectorized Binary Search");
    }
    let mut t = Table::new(vec!["variant", "avg_tick_s", "build_s", "query_s"]);
    for (label, spec) in [
        (
            "pointer-based (secondary index)",
            TechniqueKind::BinarySearch.spec(),
        ),
        ("sorted SoA + SIMD filter", TechniqueKind::VecSearch.spec()),
    ] {
        let stats = run_workload_spec(wspec, &params, spec, exec);
        report(&opts, "ablation6", &spec.name(), &stats, None);
        if !opts.json {
            t.row(vec![
                label.to_string(),
                secs(stats.avg_tick_seconds()),
                secs(stats.avg_build_seconds()),
                secs(stats.avg_query_seconds()),
            ]);
        }
    }
    if !opts.json {
        println!("{}", t.render(opts.csv));
    }

    if !opts.json {
        println!("# Ablation 7: technique x workload registry cross product");
    }
    // One representative per family: the tuned grid (rebuild), the
    // incremental grid (update-in-place — churn is its home turf), the
    // bulk-loaded R-tree, and the index-free plane sweep.
    let matrix_specs = [
        TechniqueKind::Grid(sj_grid::Stage::CpsTuned).spec(),
        TechniqueKind::GridIncremental.spec(),
        TechniqueKind::RTreeStr.spec(),
        TechniqueKind::Sweep.spec(),
    ];
    let mut headers = vec!["workload".to_string()];
    headers.extend(matrix_specs.iter().map(|s| s.name()));
    let mut t = Table::new(headers);
    for w in sj_workload::workload_registry() {
        let mut row = vec![w.name()];
        let mut reference: Option<(u64, u64)> = None;
        for spec in matrix_specs {
            let stats = run_workload_spec(w, &params, spec, exec);
            // The matrix doubles as a correctness sweep: every cell of a
            // row must compute the identical join.
            match reference {
                None => reference = Some((stats.result_pairs, stats.checksum)),
                Some(expect) => assert_eq!(
                    (stats.result_pairs, stats.checksum),
                    expect,
                    "{} computed a different join on {}",
                    spec.name(),
                    w.name()
                ),
            }
            report(
                &opts,
                "ablation7",
                &format!("{}/{}", w.name(), spec.name()),
                &stats,
                None,
            );
            if !opts.json {
                row.push(secs(stats.avg_tick_seconds()));
            }
        }
        if !opts.json {
            t.row(row);
        }
    }
    if !opts.json {
        println!("{}", t.render(opts.csv));
    }
}
