//! Property-based tests for the linearized KD-trie and its substrates.

use proptest::prelude::*;
use sj_base::geom::Rect;
use sj_base::index::{ScanIndex, SpatialIndex};
use sj_base::table::PointTable;
use sj_kdtrie::{decode, encode, sort_by_code, LinearKdTrie};

const SIDE: f32 = 500.0;

fn arb_points() -> impl Strategy<Value = Vec<(f32, f32)>> {
    prop::collection::vec((0.0f32..=SIDE, 0.0f32..=SIDE), 0..300)
}

fn table_of(points: &[(f32, f32)]) -> PointTable {
    let mut t = PointTable::default();
    for &(x, y) in points {
        t.push(x, y);
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn trie_agrees_with_scan(
        points in arb_points(),
        qx in 0.0f32..=SIDE, qy in 0.0f32..=SIDE, qw in 0.0f32..=250.0, qh in 0.0f32..=250.0,
    ) {
        let t = table_of(&points);
        let region = Rect::new(qx, qy, (qx + qw).min(SIDE), (qy + qh).min(SIDE));
        let mut trie = LinearKdTrie::new(SIDE);
        trie.build(&t);
        let scan = ScanIndex::new();
        let mut got = Vec::new();
        trie.query(&t, &region, &mut got);
        got.sort_unstable();
        let mut expect = Vec::new();
        scan.query(&t, &region, &mut expect);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn morton_roundtrip(qx in any::<u16>(), qy in any::<u16>()) {
        prop_assert_eq!(decode(encode(qx, qy)), (qx, qy));
    }

    #[test]
    fn morton_preserves_per_dimension_order(a in any::<u16>(), b in any::<u16>(), y in any::<u16>()) {
        // With y fixed, code order equals x order (and vice versa).
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(encode(lo, y) <= encode(hi, y));
        prop_assert!(encode(y, lo) <= encode(y, hi));
    }

    #[test]
    fn radix_sort_sorts_any_input(keys in prop::collection::vec(any::<u64>(), 0..2_000)) {
        let mut k = keys.clone();
        let mut scratch = Vec::new();
        sort_by_code(&mut k, &mut scratch);
        prop_assert!(k.windows(2).all(|w| (w[0] >> 32) <= (w[1] >> 32)));
        // Same multiset.
        let mut a = keys;
        let mut b = k;
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }
}
