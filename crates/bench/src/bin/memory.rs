//! Memory-footprint report: bytes per indexed point for every *index*
//! technique in the registry at the default workload. Footprints follow
//! the workspace-wide **allocated-capacity** convention
//! (`SpatialIndex::memory_bytes`): what the index actually holds
//! resident, arena slack included — so the per-point numbers sit at or
//! above the paper's §3.1 *live-structure* arithmetic (original grid
//! 32 B/point, refactored 12 B/point), which the grid crate's tests pin
//! exactly via `SimpleGrid::live_bytes`. Batch techniques (plane sweep)
//! build no index and are skipped.
//!
//! Run: `cargo run -p sj-bench --release --bin memory [--points N] [--workload SPEC] [--csv|--json]`

use sj_bench::cli::CommonOpts;
use sj_bench::report::JsonLine;
use sj_bench::table::Table;

fn main() {
    let opts = CommonOpts::parse();
    opts.require_self_join("memory");
    let params = opts.uniform_params();
    let wspec = opts.workload_spec();
    let mut workload = wspec.build(params);
    let set = workload.init();
    let table = &set.positions;

    if opts.threads.is_some() {
        // Footprint is measured after one build; there is no query phase
        // for --threads to shard.
        eprintln!("note: --threads is ignored — the footprint report runs no queries");
    }
    let specs = opts.techniques(|s| s.is_benchmarkable() && !s.is_batch());

    if !opts.json {
        println!(
            "# Index memory at {} points, {} workload (allocated capacity, base table excluded)",
            table.len(),
            wspec.name()
        );
    }
    let mut t = Table::new(vec!["technique", "total_KiB", "bytes_per_point"]);
    for spec in specs {
        let mut tech = spec.build(params.space_side);
        let Some(index) = tech.as_index_mut() else {
            // Reachable via `--technique sweep`: batch techniques build no
            // index, so there is no footprint to report.
            eprintln!(
                "(skipping {}: batch techniques build no index)",
                spec.name()
            );
            continue;
        };
        index.build(table);
        let bytes = index.memory_bytes();
        if opts.json {
            println!(
                "{}",
                JsonLine::new("memory")
                    .str("technique", &spec.name())
                    .int("points", table.len() as u64)
                    .int("index_bytes", bytes as u64)
                    .num("bytes_per_point", bytes as f64 / table.len() as f64)
                    .finish()
            );
        } else {
            t.row(vec![
                spec.label(),
                format!("{}", bytes / 1024),
                format!("{:.1}", bytes as f64 / table.len() as f64),
            ]);
        }
    }
    if !opts.json {
        println!("{}", t.render(opts.csv));
        println!(
            "(allocated capacity, arena slack included — at or above the paper's S3.1\n\
             live-structure arithmetic: original grid = 24 + 32/bs = 32 B/point at bs=4\n\
             plus directory; refactored = 8 + 16/bs = 12 B/point; pinned exactly by the\n\
             grid crate's live_bytes tests)"
        );
    }
}
