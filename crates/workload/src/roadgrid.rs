//! Road-grid ("simulation-like") workload.
//!
//! The original framework's third workload class comes from a traffic
//! simulator; the paper reports that the synthetic trends also hold
//! there. The simulator and its input data are not available, so this
//! module provides the closest synthetic equivalent that exercises the
//! same code paths (DESIGN.md §3): a **Manhattan mobility model**.
//! Objects move along the lines of a regular road grid; at every
//! intersection they turn with some probability. The resulting density is
//! highly skewed — mass concentrates on 1-D lines instead of filling the
//! plane — which is exactly what stresses indexes differently than the
//! uniform workload: most grid cells are crossed by two roads, query
//! windows straddle dense lines, and tree MBRs become elongated.

use sj_base::driver::{TickActions, Workload};
use sj_base::geom::{Point, Rect, Vec2};
use sj_base::rng::{mix64, Xoshiro256};
use sj_base::table::{entry_id, MovingSet};

use crate::params::WorkloadParams;

/// Travel direction along a road.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Dir {
    East,
    West,
    North,
    South,
}

impl Dir {
    fn velocity(self, speed: f32) -> Vec2 {
        match self {
            Dir::East => Vec2::new(speed, 0.0),
            Dir::West => Vec2::new(-speed, 0.0),
            Dir::North => Vec2::new(0.0, speed),
            Dir::South => Vec2::new(0.0, -speed),
        }
    }

    fn from_index(i: usize) -> Dir {
        [Dir::East, Dir::West, Dir::North, Dir::South][i % 4]
    }

    fn is_horizontal(self) -> bool {
        matches!(self, Dir::East | Dir::West)
    }
}

/// See module docs.
pub struct RoadGridWorkload {
    params: WorkloadParams,
    /// Roads per direction; road k runs at coordinate `k * spacing`.
    roads_per_side: u32,
    spacing: f32,
    /// Probability of turning at an intersection.
    turn_prob: f32,
    /// Per-object state (parallel to the MovingSet).
    dirs: Vec<Dir>,
    speeds: Vec<f32>,
    rng_place: Xoshiro256,
    rng_query: Xoshiro256,
    rng_move: Xoshiro256,
}

impl RoadGridWorkload {
    /// # Panics
    /// Panics on invalid base parameters, `roads_per_side < 2`, or a
    /// max speed that could cross more than one intersection per tick
    /// (the turning logic handles one crossing per tick).
    pub fn new(params: WorkloadParams, roads_per_side: u32, turn_prob: f32) -> Self {
        params.validate().expect("invalid workload parameters");
        assert!(roads_per_side >= 2, "need at least two roads per side");
        let spacing = params.space_side / roads_per_side as f32;
        assert!(
            params.max_speed < spacing,
            "max_speed {} must be below the road spacing {spacing}",
            params.max_speed
        );
        assert!(
            (0.0..=1.0).contains(&turn_prob),
            "turn_prob must be in [0, 1]"
        );
        let mut root = Xoshiro256::seeded(params.seed ^ 0x524F_4144);
        RoadGridWorkload {
            params,
            roads_per_side,
            spacing,
            turn_prob,
            dirs: Vec::new(),
            speeds: Vec::new(),
            rng_place: root.fork(),
            rng_query: root.fork(),
            rng_move: root.fork(),
        }
    }

    /// Defaults: 40 roads per side, 30 % turn probability.
    pub fn with_defaults(params: WorkloadParams) -> Self {
        Self::new(params, 40, 0.3)
    }

    pub fn spacing(&self) -> f32 {
        self.spacing
    }

    /// Grow the per-object state to cover `n` objects. Objects inserted
    /// from outside (a churn wrapper's arrivals) get a deterministic
    /// per-id direction and a mid-range speed, independent of every RNG
    /// stream — they merge into the traffic from wherever they spawned.
    fn ensure_state(&mut self, n: usize) {
        while self.dirs.len() < n {
            let id = self.dirs.len() as u64;
            self.dirs
                .push(Dir::from_index(mix64(id ^ self.params.seed) as usize));
            self.speeds.push(self.params.max_speed * 0.6);
        }
    }

    /// Coordinate of the nearest road line at or below `v`.
    fn snap(&self, v: f32) -> f32 {
        let k = (v / self.spacing)
            .round()
            .min((self.roads_per_side - 1) as f32)
            .max(0.0);
        k * self.spacing
    }
}

impl Workload for RoadGridWorkload {
    fn space(&self) -> Rect {
        Rect::space(self.params.space_side)
    }

    fn query_side(&self) -> f32 {
        self.params.query_side
    }

    fn init(&mut self) -> MovingSet {
        let n = self.params.num_points as usize;
        let side = self.params.space_side;
        let mut set = MovingSet::with_capacity(n);
        self.dirs.clear();
        self.speeds.clear();
        for _ in 0..n {
            let dir = Dir::from_index(self.rng_place.range_usize(4));
            // Place the object on a random road of the matching
            // orientation, at a random offset along it.
            let raw = self.rng_place.range_f32(0.0, side);
            let road = self.snap(raw);
            let offset = self.rng_place.range_f32(0.0, side);
            let pos = if dir.is_horizontal() {
                Point::new(offset, road)
            } else {
                Point::new(road, offset)
            };
            let speed = self
                .rng_place
                .range_f32(self.params.max_speed * 0.2, self.params.max_speed);
            self.dirs.push(dir);
            self.speeds.push(speed);
            set.push(pos, dir.velocity(speed));
        }
        set
    }

    fn plan_tick(&mut self, _tick: u32, set: &MovingSet, actions: &mut TickActions) {
        let n = entry_id(set.len());
        for id in 0..n {
            if self.rng_query.bernoulli(self.params.frac_queriers) {
                actions.queriers.push(id);
            }
        }
        // Velocity changes happen inside `advance` (the mobility model is
        // the updater); the explicit update list stays empty.
    }

    fn advance(&mut self, set: &mut MovingSet) {
        let side = self.params.space_side;
        self.ensure_state(set.len());
        for i in 0..set.len() {
            let id = entry_id(i);
            if !set.is_live(id) {
                continue;
            }
            let p = set.positions.point(id);
            let dir = self.dirs[i];
            let speed = self.speeds[i];
            let v = dir.velocity(speed);
            let mut nx = p.x + v.x;
            let mut ny = p.y + v.y;

            // Reverse at the boundary (roads end at the space edge).
            if !(0.0..=side).contains(&nx) || !(0.0..=side).contains(&ny) {
                let flipped = match dir {
                    Dir::East => Dir::West,
                    Dir::West => Dir::East,
                    Dir::North => Dir::South,
                    Dir::South => Dir::North,
                };
                self.dirs[i] = flipped;
                nx = p.x.clamp(0.0, side);
                ny = p.y.clamp(0.0, side);
                set.positions.set_position(id, nx, ny);
                set.set_velocity(id, flipped.velocity(speed));
                continue;
            }

            // Did we cross an intersection this tick? (At most one:
            // speed < spacing.)
            let along_before = if dir.is_horizontal() { p.x } else { p.y };
            let along_after = if dir.is_horizontal() { nx } else { ny };
            let cell_before = (along_before / self.spacing).floor();
            let cell_after = (along_after / self.spacing).floor();
            if cell_before != cell_after && self.rng_move.bernoulli(self.turn_prob) {
                // Turn: snap to the intersection and pick a new direction.
                let crossing = cell_before.max(cell_after) * self.spacing;
                let new_dir = Dir::from_index(self.rng_move.range_usize(4));
                if dir.is_horizontal() {
                    nx = crossing;
                    ny = self.snap(p.y);
                } else {
                    ny = crossing;
                    nx = self.snap(p.x);
                }
                self.dirs[i] = new_dir;
                set.set_velocity(id, new_dir.velocity(speed));
            }
            set.positions
                .set_position(id, nx.clamp(0.0, side), ny.clamp(0.0, side));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> WorkloadParams {
        WorkloadParams {
            num_points: 1_000,
            space_side: 8_000.0,
            max_speed: 150.0,
            ticks: 10,
            ..WorkloadParams::default()
        }
    }

    fn on_a_road(w: &RoadGridWorkload, p: Point) -> bool {
        let near = |v: f32| {
            let k = (v / w.spacing()).round();
            (v - k * w.spacing()).abs() < 1e-2
        };
        near(p.x) || near(p.y)
    }

    #[test]
    fn objects_start_on_roads() {
        let mut w = RoadGridWorkload::with_defaults(small_params());
        let set = w.init();
        for (_, p) in set.positions.iter() {
            assert!(on_a_road(&w, p), "{p:?} is off-road");
        }
    }

    #[test]
    fn objects_stay_on_roads_and_in_space() {
        let mut w = RoadGridWorkload::with_defaults(small_params());
        let mut set = w.init();
        let space = w.space();
        let mut actions = TickActions::default();
        for tick in 0..50 {
            actions.clear();
            w.plan_tick(tick, &set, &mut actions);
            w.advance(&mut set);
            for (_, p) in set.positions.iter() {
                assert!(space.contains_point(p.x, p.y), "tick {tick}: escaped {p:?}");
                assert!(on_a_road(&w, p), "tick {tick}: off-road {p:?}");
            }
        }
    }

    #[test]
    fn density_is_concentrated_on_lines() {
        // A query window centred between roads (no road through it) must
        // be empty; the same window centred on a road is not.
        let mut w = RoadGridWorkload::new(small_params(), 8, 0.3); // spacing 1000
        let set = w.init();
        let off_road = Rect::new(1_100.0, 1_100.0, 1_900.0, 1_900.0); // strictly between lines
        let hits = set
            .positions
            .iter()
            .filter(|(_, p)| off_road.contains_point(p.x, p.y))
            .count();
        assert_eq!(hits, 0, "objects found between roads");
    }

    #[test]
    fn deterministic_by_seed() {
        let mk = || {
            let mut w = RoadGridWorkload::with_defaults(small_params());
            let mut set = w.init();
            for _ in 0..10 {
                w.advance(&mut set);
            }
            set.positions.point(123)
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn turns_actually_happen() {
        let mut w = RoadGridWorkload::new(small_params(), 40, 1.0); // always turn
        let mut set = w.init();
        let initial_dirs = w.dirs.clone();
        for _ in 0..20 {
            w.advance(&mut set);
        }
        let changed = w
            .dirs
            .iter()
            .zip(&initial_dirs)
            .filter(|(a, b)| a != b)
            .count();
        assert!(
            changed > set.len() / 4,
            "only {changed} objects ever turned"
        );
    }

    #[test]
    fn too_fast_for_the_grid_is_rejected() {
        let params = WorkloadParams {
            max_speed: 5_000.0, // spacing at 40 roads over 8000 is 200
            ..small_params()
        };
        let r = std::panic::catch_unwind(|| RoadGridWorkload::new(params, 40, 0.3));
        assert!(r.is_err());
    }
}
