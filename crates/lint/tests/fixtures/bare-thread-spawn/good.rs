//@ path: crates/x/src/lib.rs
pub fn fan_out() -> u32 {
    let mut total = 0;
    std::thread::scope(|s| {
        let h = s.spawn(|| 1 + 1);
        total = h.join().unwrap_or(0);
    });
    total
}

// Tile workers follow the same law: one scoped spawn per tile, partials
// merged with the commutative wrapping fold — the sj_base::par idiom.
pub fn join_tiles(tiles: &[u64]) -> u64 {
    let mut partials = vec![0u64; tiles.len()];
    std::thread::scope(|s| {
        for (partial, &tile) in partials.iter_mut().zip(tiles) {
            s.spawn(move || *partial = tile ^ 0x9e37);
        }
    });
    partials.into_iter().fold(0, u64::wrapping_add)
}
