//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build container has no crates.io access, so this vendored crate
//! implements the subset the workspace's `benches/` use: [`Criterion`],
//! [`BenchmarkId`], `benchmark_group` / `bench_function` / `sample_size` /
//! `finish`, [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Each benchmark is warmed up, then timed over
//! a fixed wall-clock budget, and a single `name  time/iter  iters` line is
//! printed — enough to compare techniques by eye, with none of criterion's
//! statistics, plotting, or baseline storage.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers work like the real crate.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    measure_budget: Duration,
    /// (total elapsed, iterations) of the measured phase, read by the runner.
    result: Option<(Duration, u64)>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: estimate per-iteration cost with a few runs.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_iters < 3
            || (warm_start.elapsed() < Duration::from_millis(20) && warm_iters < 1_000)
        {
            std_black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start
            .elapsed()
            .checked_div(warm_iters as u32)
            .unwrap_or_default();

        // Measured phase: enough iterations to fill the budget, at least one.
        let target = if per_iter.is_zero() {
            1_000
        } else {
            (self.measure_budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };
        let start = Instant::now();
        for _ in 0..target {
            std_black_box(f());
        }
        self.result = Some((start.elapsed(), target));
    }
}

fn run_one(name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // sample_size scales the measurement budget the way criterion's
    // sample count does, within a sane cap for CI.
    let budget = Duration::from_millis((5 * sample_size as u64).clamp(25, 500));
    let mut b = Bencher {
        measure_budget: budget,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((elapsed, iters)) => {
            let per_iter = elapsed.as_nanos() as f64 / iters as f64;
            println!(
                "bench {name:<48} {:>12.1} ns/iter ({iters} iters)",
                per_iter
            );
        }
        None => println!("bench {name:<48} (no measurement: closure never called iter)"),
    }
}

/// Mirror of `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&id.into().id, self.sample_size, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// Mirror of `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into().id);
        run_one(&id, self.sample_size, &mut f);
        self
    }

    pub fn finish(self) {}
}

/// Mirror of `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirror of `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; this shim
            // runs everything unconditionally and ignores the CLI.
            $( $group(); )+
        }
    };
}
