//! # sj-grid
//!
//! The Simple Grid spatial index in both of the paper's incarnations:
//!
//! - the **original** implementation from the PVLDB'13 framework
//!   (Figure 3a): 16-byte directory cells, bucket lists of 24-byte
//!   doubly-linked entry nodes, and a query algorithm that scans the whole
//!   directory (Algorithm 1);
//! - the **refactored** implementation of the paper (Figure 3b):
//!   pointer-only 8-byte cells, entries inline in buckets, overlap-range
//!   queries (Algorithm 2), re-tuned to bs = 20 / cps = 64.
//!
//! The five cumulative improvement [`Stage`]s reproduce Table 2's lower
//! half and Figure 4. Arenas are flat `u64` pools with slot-index handles,
//! giving the same hop counts and byte footprints as the C++ originals
//! without `unsafe` (see DESIGN.md §4).
//!
//! The paper's Figure 3, in bytes:
//!
//! ```text
//!  (a) Original                           (b) Refactored
//!  directory cell (16 B)                  directory cell (8 B)
//!  ┌─────────┬─────────┐                  ┌─────────┐
//!  │ count   │ bucket* │                  │ bucket* │
//!  └─────────┴────┬────┘                  └────┬────┘
//!                 ▼                            ▼
//!  bucket (32 B)                          bucket (16 B + bs×8 B)
//!  ┌──────┬──────┬──────┬─────┐           ┌──────┬─────┬────┬────┬────┐
//!  │ next*│ head*│ tail*│ len │           │ next*│ len │ e0 │ e1 │ …  │
//!  └──┬───┴──┬───┴──────┴─────┘           └──┬───┴─────┴────┴────┴────┘
//!     ▼      ▼                               ▼ (next bucket)
//!   next   node (24 B, one per point!)
//!  bucket  ┌──────┬──────┬───────┐
//!          │ prev*│ next*│ entry │ → base table
//!          └──────┴──────┴───────┘
//!
//!  per point at bs=4:  24 + 32/4 = 32 B              8 + 16/4 = 12 B
//! ```
//!
//! [`IncrementalGrid`] additionally provides the update-in-place u-Grid
//! of the paper's reference \[8\] as an extension.

mod addr;
mod config;
mod grid;
mod incremental;
mod layout_inline;
mod layout_original;

pub use config::{GridConfig, Layout, QueryAlgo, Stage};
pub use grid::SimpleGrid;
pub use incremental::IncrementalGrid;
pub use layout_inline::{InlineCoordsStore, InlineStore};
pub use layout_original::{OriginalStore, NULL};
