//! The parallel query phase as a registry-level property: the same
//! `Technique::run` entry point, a different [`ExecMode`].
//!
//! The paper is deliberately single-threaded; once the implementation is
//! cache-efficient, queries (pure reads) shard trivially. This example
//! drives both join categories — the tuned grid (per-query) and the plane
//! sweep (set-at-a-time, strip-partitioned) — across thread counts,
//! verifies every configuration computes the identical join, and reports
//! the query-phase speedup. The `@par<N>` spec modifier shown at the end
//! is what the bench binaries' `--technique grid:inline@par8` uses.
//!
//! Run: `cargo run --release --example parallel_join`

use spatial_joins::prelude::*;

fn main() {
    let params = WorkloadParams {
        num_points: 50_000,
        ticks: 6,
        ..WorkloadParams::default()
    };
    let cfg = DriverConfig::new(params.ticks, 1);

    for spec_name in ["grid:inline", "sweep"] {
        let sequential = {
            let mut workload = UniformWorkload::new(params);
            let mut tech = Technique::from_spec(spec_name, params.space_side).unwrap();
            tech.run(&mut workload, cfg)
        };
        println!(
            "{spec_name}: sequential query phase {:.4} s/tick ({} pairs, checksum {:#x})",
            sequential.avg_query_seconds(),
            sequential.result_pairs,
            sequential.checksum
        );

        for threads in [2usize, 4, 8] {
            let mut workload = UniformWorkload::new(params);
            let mut tech = Technique::from_spec(spec_name, params.space_side).unwrap();
            let exec = ExecMode::parallel(threads).unwrap();
            let par = tech.run(&mut workload, cfg.with_exec(exec));
            assert_eq!(par.checksum, sequential.checksum, "parallel join differs!");
            assert_eq!(par.result_pairs, sequential.result_pairs);
            println!(
                "{spec_name}: {threads} threads: query phase {:.4} s/tick ({:.2}x)",
                par.avg_query_seconds(),
                sequential.avg_query_seconds() / par.avg_query_seconds().max(1e-12)
            );
        }
        println!();
    }

    // Equivalent, via the spec modifier: the parsed exec mode rides along
    // in the built technique, so a plain sequential config runs parallel.
    let sequential = {
        let mut workload = UniformWorkload::new(params);
        let mut tech = Technique::from_spec("grid:inline", params.space_side).unwrap();
        tech.run(&mut workload, cfg)
    };
    let mut workload = UniformWorkload::new(params);
    let mut tech = Technique::from_spec("grid:inline@par8", params.space_side).unwrap();
    let stats = tech.run(&mut workload, cfg);
    assert_eq!(
        stats.checksum, sequential.checksum,
        "spec-modifier join differs!"
    );
    assert_eq!(stats.result_pairs, sequential.result_pairs);
    println!(
        "grid:inline@par8 (spec modifier): query phase {:.4} s/tick, checksum {:#x}",
        stats.avg_query_seconds(),
        stats.checksum
    );
    println!("\nidentical joins on every configuration.");
}
