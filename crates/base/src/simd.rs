//! Vectorized range filtering over structure-of-arrays coordinates.
//!
//! The paper's closing argument — implementation dominates in main
//! memory — invites one more step it does not take: data-parallel
//! filtering. A contiguous slice of x/y columns can be tested against a
//! rectangle 8 lanes at a time with AVX2 where the CPU has it (detected
//! once at runtime), 4 lanes with SSE2 otherwise (unconditionally
//! available on x86_64); other architectures use an unrolled scalar loop
//! that LLVM auto-vectorizes. The `VecSearchJoin` technique in
//! `sj-binsearch` builds on this; the ablation bench quantifies the gain.
//!
//! All widths are bit-identical by construction — the same ordered-quiet
//! `>= / <=` lane compares as the scalar `Rect::contains_point`, with
//! candidates emitted in index order via the compare movemask — and the
//! tests assert it on boundary ties, NaN lanes, and random columns.

use crate::geom::Rect;
use crate::table::{entry_id, EntryId};

/// Append `base + i` for every `i` with `(xs[i], ys[i])` inside `region`
/// (closed semantics). `xs` and `ys` must have equal lengths.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn filter_range(xs: &[f32], ys: &[f32], region: &Rect, base: EntryId, out: &mut Vec<EntryId>) {
    assert_eq!(
        xs.len(),
        ys.len(),
        "coordinate columns must have equal length"
    );
    #[cfg(target_arch = "x86_64")]
    {
        // The detection macro caches its answer in an atomic, so the hot
        // path pays one load and a predictable branch.
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just verified on this CPU.
            unsafe { filter_range_avx2(xs, ys, region, base, out) }
        } else {
            filter_range_sse2(xs, ys, region, base, out);
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        filter_range_scalar(xs, ys, region, base, out);
    }
}

/// Portable implementation; public so tests and non-x86 builds share it.
pub fn filter_range_scalar(
    xs: &[f32],
    ys: &[f32],
    region: &Rect,
    base: EntryId,
    out: &mut Vec<EntryId>,
) {
    for i in 0..xs.len() {
        if region.contains_point(xs[i], ys[i]) {
            out.push(base + entry_id(i));
        }
    }
}

/// SSE2 path: 4 candidate tests per iteration, branch-free compare, one
/// movemask branch per block (almost always zero — query windows are
/// small relative to the space, so hits are rare and clustered).
#[cfg(target_arch = "x86_64")]
pub fn filter_range_sse2(
    xs: &[f32],
    ys: &[f32],
    region: &Rect,
    base: EntryId,
    out: &mut Vec<EntryId>,
) {
    use std::arch::x86_64::{
        _mm_and_ps, _mm_cmpge_ps, _mm_cmple_ps, _mm_loadu_ps, _mm_movemask_ps, _mm_set1_ps,
    };

    let n = xs.len();
    let blocks = n / 4;
    // SAFETY: SSE2 is part of the x86_64 baseline; loads are unaligned
    // (`loadu`) and stay within `xs`/`ys` because `i + 4 <= blocks * 4 <= n`.
    unsafe {
        let x1 = _mm_set1_ps(region.x1);
        let x2 = _mm_set1_ps(region.x2);
        let y1 = _mm_set1_ps(region.y1);
        let y2 = _mm_set1_ps(region.y2);
        for b in 0..blocks {
            let i = b * 4;
            let vx = _mm_loadu_ps(xs.as_ptr().add(i));
            let vy = _mm_loadu_ps(ys.as_ptr().add(i));
            let in_x = _mm_and_ps(_mm_cmpge_ps(vx, x1), _mm_cmple_ps(vx, x2));
            let in_y = _mm_and_ps(_mm_cmpge_ps(vy, y1), _mm_cmple_ps(vy, y2));
            let mut mask = _mm_movemask_ps(_mm_and_ps(in_x, in_y)) as u32;
            while mask != 0 {
                let lane = mask.trailing_zeros();
                out.push(base + entry_id(i) + lane);
                mask &= mask - 1;
            }
        }
    }
    // Scalar tail.
    for i in blocks * 4..n {
        if region.contains_point(xs[i], ys[i]) {
            out.push(base + entry_id(i));
        }
    }
}

/// AVX2 path: 8 candidate tests per iteration. The `_CMP_GE_OQ` /
/// `_CMP_LE_OQ` predicates are the 256-bit spellings of the SSE2
/// `cmpge`/`cmple` — ordered, quiet, false on NaN — so every width
/// accepts exactly the candidates the scalar `contains_point` does.
///
/// # Safety
/// The CPU must support AVX2 (`is_x86_feature_detected!("avx2")`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
pub unsafe fn filter_range_avx2(
    xs: &[f32],
    ys: &[f32],
    region: &Rect,
    base: EntryId,
    out: &mut Vec<EntryId>,
) {
    use std::arch::x86_64::{
        _mm256_and_ps, _mm256_cmp_ps, _mm256_loadu_ps, _mm256_movemask_ps, _mm256_set1_ps,
        _CMP_GE_OQ, _CMP_LE_OQ,
    };

    let n = xs.len();
    let blocks = n / 8;
    // SAFETY: caller verified AVX2; loads are unaligned (`loadu`) and stay
    // within `xs`/`ys` because `i + 8 <= blocks * 8 <= n`.
    unsafe {
        let x1 = _mm256_set1_ps(region.x1);
        let x2 = _mm256_set1_ps(region.x2);
        let y1 = _mm256_set1_ps(region.y1);
        let y2 = _mm256_set1_ps(region.y2);
        for b in 0..blocks {
            let i = b * 8;
            let vx = _mm256_loadu_ps(xs.as_ptr().add(i));
            let vy = _mm256_loadu_ps(ys.as_ptr().add(i));
            let in_x = _mm256_and_ps(
                _mm256_cmp_ps::<_CMP_GE_OQ>(vx, x1),
                _mm256_cmp_ps::<_CMP_LE_OQ>(vx, x2),
            );
            let in_y = _mm256_and_ps(
                _mm256_cmp_ps::<_CMP_GE_OQ>(vy, y1),
                _mm256_cmp_ps::<_CMP_LE_OQ>(vy, y2),
            );
            let mut mask = _mm256_movemask_ps(_mm256_and_ps(in_x, in_y)) as u32;
            while mask != 0 {
                let lane = mask.trailing_zeros();
                out.push(base + entry_id(i) + lane);
                mask &= mask - 1;
            }
        }
    }
    // Scalar tail (at most 7 points).
    for i in blocks * 8..n {
        if region.contains_point(xs[i], ys[i]) {
            out.push(base + entry_id(i));
        }
    }
}

/// Like [`filter_range`], but matching positions are translated through a
/// parallel `ids` column and handed to `emit` — the shape secondary
/// indexes need when their coordinate copies are sorted in a different
/// order than the base table, in the sink form
/// [`crate::index::SpatialIndex::for_each_in`] wants.
///
/// # Panics
/// Panics if the three slices have different lengths.
pub fn filter_range_gather_each<F: FnMut(EntryId) + ?Sized>(
    xs: &[f32],
    ys: &[f32],
    ids: &[EntryId],
    region: &Rect,
    emit: &mut F,
) {
    assert!(
        xs.len() == ys.len() && xs.len() == ids.len(),
        "coordinate and id columns must have equal length"
    );
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just verified on this CPU.
            unsafe { filter_range_gather_each_avx2(xs, ys, ids, region, emit) }
        } else {
            filter_range_gather_each_sse2(xs, ys, ids, region, emit);
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        for i in 0..xs.len() {
            if region.contains_point(xs[i], ys[i]) {
                emit(ids[i]);
            }
        }
    }
}

/// SSE2 width of [`filter_range_gather_each`]; public so the tests can
/// pin it against the other widths on CPUs that also have AVX2.
#[cfg(target_arch = "x86_64")]
pub fn filter_range_gather_each_sse2<F: FnMut(EntryId) + ?Sized>(
    xs: &[f32],
    ys: &[f32],
    ids: &[EntryId],
    region: &Rect,
    emit: &mut F,
) {
    use std::arch::x86_64::{
        _mm_and_ps, _mm_cmpge_ps, _mm_cmple_ps, _mm_loadu_ps, _mm_movemask_ps, _mm_set1_ps,
    };
    let n = xs.len();
    let blocks = n / 4;
    // SAFETY: see `filter_range_sse2` — baseline SSE2, unaligned loads,
    // indices bounded by `blocks * 4 <= n`.
    unsafe {
        let x1 = _mm_set1_ps(region.x1);
        let x2 = _mm_set1_ps(region.x2);
        let y1 = _mm_set1_ps(region.y1);
        let y2 = _mm_set1_ps(region.y2);
        for b in 0..blocks {
            let i = b * 4;
            let vx = _mm_loadu_ps(xs.as_ptr().add(i));
            let vy = _mm_loadu_ps(ys.as_ptr().add(i));
            let in_x = _mm_and_ps(_mm_cmpge_ps(vx, x1), _mm_cmple_ps(vx, x2));
            let in_y = _mm_and_ps(_mm_cmpge_ps(vy, y1), _mm_cmple_ps(vy, y2));
            let mut mask = _mm_movemask_ps(_mm_and_ps(in_x, in_y)) as u32;
            while mask != 0 {
                let lane = mask.trailing_zeros() as usize;
                emit(ids[i + lane]);
                mask &= mask - 1;
            }
        }
    }
    for i in blocks * 4..n {
        if region.contains_point(xs[i], ys[i]) {
            emit(ids[i]);
        }
    }
}

/// AVX2 width of [`filter_range_gather_each`] — see [`filter_range_avx2`]
/// for the predicate-equivalence argument.
///
/// # Safety
/// The CPU must support AVX2 (`is_x86_feature_detected!("avx2")`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
pub unsafe fn filter_range_gather_each_avx2<F: FnMut(EntryId) + ?Sized>(
    xs: &[f32],
    ys: &[f32],
    ids: &[EntryId],
    region: &Rect,
    emit: &mut F,
) {
    use std::arch::x86_64::{
        _mm256_and_ps, _mm256_cmp_ps, _mm256_loadu_ps, _mm256_movemask_ps, _mm256_set1_ps,
        _CMP_GE_OQ, _CMP_LE_OQ,
    };
    let n = xs.len();
    let blocks = n / 8;
    // SAFETY: caller verified AVX2; unaligned loads bounded by
    // `blocks * 8 <= n`.
    unsafe {
        let x1 = _mm256_set1_ps(region.x1);
        let x2 = _mm256_set1_ps(region.x2);
        let y1 = _mm256_set1_ps(region.y1);
        let y2 = _mm256_set1_ps(region.y2);
        for b in 0..blocks {
            let i = b * 8;
            let vx = _mm256_loadu_ps(xs.as_ptr().add(i));
            let vy = _mm256_loadu_ps(ys.as_ptr().add(i));
            let in_x = _mm256_and_ps(
                _mm256_cmp_ps::<_CMP_GE_OQ>(vx, x1),
                _mm256_cmp_ps::<_CMP_LE_OQ>(vx, x2),
            );
            let in_y = _mm256_and_ps(
                _mm256_cmp_ps::<_CMP_GE_OQ>(vy, y1),
                _mm256_cmp_ps::<_CMP_LE_OQ>(vy, y2),
            );
            let mut mask = _mm256_movemask_ps(_mm256_and_ps(in_x, in_y)) as u32;
            while mask != 0 {
                let lane = mask.trailing_zeros() as usize;
                emit(ids[i + lane]);
                mask &= mask - 1;
            }
        }
    }
    for i in blocks * 8..n {
        if region.contains_point(xs[i], ys[i]) {
            emit(ids[i]);
        }
    }
}

/// Scalar rect-overlap lane test, spelled exactly like
/// [`Rect::intersects`] so the vector widths below have a one-line oracle:
/// closed semantics, touching edges overlap, any NaN coordinate fails.
#[inline]
fn overlaps(x1: f32, y1: f32, x2: f32, y2: f32, region: &Rect) -> bool {
    region.x1 <= x2 && x1 <= region.x2 && region.y1 <= y2 && y1 <= region.y2
}

/// Vectorized extent-overlap filter over structure-of-arrays rectangle
/// columns (the [`crate::table::ExtentTable`] layout): call `emit` with
/// `base + i` for every row `i` whose rectangle intersects `region`
/// (closed semantics — touching edges do intersect), in index order.
/// Dispatches AVX2 → SSE2 → scalar exactly like [`filter_range`]; all
/// widths are bit-identical on touching-edge ties because every lane
/// compare is the same ordered-quiet `>= / <=` as the scalar
/// [`Rect::intersects`].
///
/// # Panics
/// Panics if the four columns have different lengths.
pub fn filter_overlap_each<F: FnMut(EntryId) + ?Sized>(
    x1s: &[f32],
    y1s: &[f32],
    x2s: &[f32],
    y2s: &[f32],
    region: &Rect,
    base: EntryId,
    emit: &mut F,
) {
    assert!(
        x1s.len() == y1s.len() && x1s.len() == x2s.len() && x1s.len() == y2s.len(),
        "extent columns must have equal length"
    );
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just verified on this CPU.
            unsafe { filter_overlap_each_avx2(x1s, y1s, x2s, y2s, region, base, emit) }
        } else {
            filter_overlap_each_sse2(x1s, y1s, x2s, y2s, region, base, emit);
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        filter_overlap_each_scalar(x1s, y1s, x2s, y2s, region, base, emit);
    }
}

/// Portable width of [`filter_overlap_each`]; public so tests and non-x86
/// builds share it — and so the proptests can use it as the oracle for
/// the vector widths.
pub fn filter_overlap_each_scalar<F: FnMut(EntryId) + ?Sized>(
    x1s: &[f32],
    y1s: &[f32],
    x2s: &[f32],
    y2s: &[f32],
    region: &Rect,
    base: EntryId,
    emit: &mut F,
) {
    for i in 0..x1s.len() {
        if overlaps(x1s[i], y1s[i], x2s[i], y2s[i], region) {
            emit(base + entry_id(i));
        }
    }
}

/// SSE2 width of [`filter_overlap_each`]: 4 overlap tests per iteration.
/// The lane predicate is `x1 <= q.x2 ∧ x2 >= q.x1 ∧ y1 <= q.y2 ∧
/// y2 >= q.y1` — the same four ordered-quiet compares as the scalar
/// [`Rect::intersects`], so NaN lanes are rejected identically.
#[cfg(target_arch = "x86_64")]
pub fn filter_overlap_each_sse2<F: FnMut(EntryId) + ?Sized>(
    x1s: &[f32],
    y1s: &[f32],
    x2s: &[f32],
    y2s: &[f32],
    region: &Rect,
    base: EntryId,
    emit: &mut F,
) {
    use std::arch::x86_64::{
        _mm_and_ps, _mm_cmpge_ps, _mm_cmple_ps, _mm_loadu_ps, _mm_movemask_ps, _mm_set1_ps,
    };

    let n = x1s.len();
    let blocks = n / 4;
    // SAFETY: SSE2 is part of the x86_64 baseline; loads are unaligned
    // (`loadu`) and stay within the columns because `i + 4 <= blocks * 4
    // <= n`.
    unsafe {
        let qx1 = _mm_set1_ps(region.x1);
        let qx2 = _mm_set1_ps(region.x2);
        let qy1 = _mm_set1_ps(region.y1);
        let qy2 = _mm_set1_ps(region.y2);
        for b in 0..blocks {
            let i = b * 4;
            let vx1 = _mm_loadu_ps(x1s.as_ptr().add(i));
            let vy1 = _mm_loadu_ps(y1s.as_ptr().add(i));
            let vx2 = _mm_loadu_ps(x2s.as_ptr().add(i));
            let vy2 = _mm_loadu_ps(y2s.as_ptr().add(i));
            let in_x = _mm_and_ps(_mm_cmple_ps(vx1, qx2), _mm_cmpge_ps(vx2, qx1));
            let in_y = _mm_and_ps(_mm_cmple_ps(vy1, qy2), _mm_cmpge_ps(vy2, qy1));
            let mut mask = _mm_movemask_ps(_mm_and_ps(in_x, in_y)) as u32;
            while mask != 0 {
                let lane = mask.trailing_zeros();
                emit(base + entry_id(i) + lane);
                mask &= mask - 1;
            }
        }
    }
    // Scalar tail.
    for i in blocks * 4..n {
        if overlaps(x1s[i], y1s[i], x2s[i], y2s[i], region) {
            emit(base + entry_id(i));
        }
    }
}

/// AVX2 width of [`filter_overlap_each`]: 8 overlap tests per iteration
/// via the `_CMP_GE_OQ` / `_CMP_LE_OQ` predicates (ordered, quiet, false
/// on NaN — see [`filter_range_avx2`]).
///
/// # Safety
/// The CPU must support AVX2 (`is_x86_feature_detected!("avx2")`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
pub unsafe fn filter_overlap_each_avx2<F: FnMut(EntryId) + ?Sized>(
    x1s: &[f32],
    y1s: &[f32],
    x2s: &[f32],
    y2s: &[f32],
    region: &Rect,
    base: EntryId,
    emit: &mut F,
) {
    use std::arch::x86_64::{
        _mm256_and_ps, _mm256_cmp_ps, _mm256_loadu_ps, _mm256_movemask_ps, _mm256_set1_ps,
        _CMP_GE_OQ, _CMP_LE_OQ,
    };

    let n = x1s.len();
    let blocks = n / 8;
    // SAFETY: caller verified AVX2; unaligned loads bounded by
    // `blocks * 8 <= n`.
    unsafe {
        let qx1 = _mm256_set1_ps(region.x1);
        let qx2 = _mm256_set1_ps(region.x2);
        let qy1 = _mm256_set1_ps(region.y1);
        let qy2 = _mm256_set1_ps(region.y2);
        for b in 0..blocks {
            let i = b * 8;
            let vx1 = _mm256_loadu_ps(x1s.as_ptr().add(i));
            let vy1 = _mm256_loadu_ps(y1s.as_ptr().add(i));
            let vx2 = _mm256_loadu_ps(x2s.as_ptr().add(i));
            let vy2 = _mm256_loadu_ps(y2s.as_ptr().add(i));
            let in_x = _mm256_and_ps(
                _mm256_cmp_ps::<_CMP_LE_OQ>(vx1, qx2),
                _mm256_cmp_ps::<_CMP_GE_OQ>(vx2, qx1),
            );
            let in_y = _mm256_and_ps(
                _mm256_cmp_ps::<_CMP_LE_OQ>(vy1, qy2),
                _mm256_cmp_ps::<_CMP_GE_OQ>(vy2, qy1),
            );
            let mut mask = _mm256_movemask_ps(_mm256_and_ps(in_x, in_y)) as u32;
            while mask != 0 {
                let lane = mask.trailing_zeros();
                emit(base + entry_id(i) + lane);
                mask &= mask - 1;
            }
        }
    }
    // Scalar tail (at most 7 rectangles).
    for i in blocks * 8..n {
        if overlaps(x1s[i], y1s[i], x2s[i], y2s[i], region) {
            emit(base + entry_id(i));
        }
    }
}

/// [`filter_overlap_each`] collecting into a `Vec` (test and bench
/// convenience, mirroring [`filter_range`]).
pub fn filter_overlap(
    x1s: &[f32],
    y1s: &[f32],
    x2s: &[f32],
    y2s: &[f32],
    region: &Rect,
    base: EntryId,
    out: &mut Vec<EntryId>,
) {
    filter_overlap_each(x1s, y1s, x2s, y2s, region, base, &mut |e| out.push(e));
}

/// [`filter_range_gather_each`] collecting into a `Vec` (test and bench
/// convenience).
pub fn filter_range_gather(
    xs: &[f32],
    ys: &[f32],
    ids: &[EntryId],
    region: &Rect,
    out: &mut Vec<EntryId>,
) {
    filter_range_gather_each(xs, ys, ids, region, &mut |e| out.push(e));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    fn random_cols(n: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
        let mut rng = Xoshiro256::seeded(seed);
        let xs = (0..n).map(|_| rng.range_f32(0.0, 1000.0)).collect();
        let ys = (0..n).map(|_| rng.range_f32(0.0, 1000.0)).collect();
        (xs, ys)
    }

    /// Points exactly on every edge and corner of `[100,200]²`, plus
    /// just-outside near-misses — the ties where `>=`/`>` would diverge.
    fn boundary_cols() -> (Vec<f32>, Vec<f32>) {
        let xs = vec![
            100.0,
            200.0,
            150.0,
            99.999,
            200.001,
            100.0,
            200.0,
            150.0,
            100.0,
            f32::NAN,
            150.0,
        ];
        let ys = vec![
            100.0,
            200.0,
            100.0,
            150.0,
            150.0,
            200.0,
            100.0,
            200.0,
            99.999,
            150.0,
            f32::NAN,
        ];
        (xs, ys)
    }

    #[test]
    fn matches_scalar_on_random_data() {
        let (xs, ys) = random_cols(1_003, 1); // odd length exercises the tail
        let region = Rect::new(200.0, 300.0, 600.0, 700.0);
        let mut fast = Vec::new();
        filter_range(&xs, &ys, &region, 10, &mut fast);
        let mut slow = Vec::new();
        filter_range_scalar(&xs, &ys, &region, 10, &mut slow);
        assert_eq!(fast, slow);
        assert!(!fast.is_empty());
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn sse2_matches_scalar_on_boundaries() {
        let region = Rect::new(100.0, 100.0, 200.0, 200.0);
        let (xs, ys) = boundary_cols();
        let mut fast = Vec::new();
        filter_range_sse2(&xs, &ys, &region, 0, &mut fast);
        let mut slow = Vec::new();
        filter_range_scalar(&xs, &ys, &region, 0, &mut slow);
        assert_eq!(fast, slow);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_matches_scalar_on_boundaries() {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return; // nothing to test on this CPU
        }
        let region = Rect::new(100.0, 100.0, 200.0, 200.0);
        let (xs, ys) = boundary_cols();
        let mut fast = Vec::new();
        // SAFETY: detection checked above.
        unsafe { filter_range_avx2(&xs, &ys, &region, 0, &mut fast) };
        let mut slow = Vec::new();
        filter_range_scalar(&xs, &ys, &region, 0, &mut slow);
        assert_eq!(fast, slow);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn every_width_is_bit_identical_on_random_columns() {
        // 1_013 = 126 AVX2 blocks + 5 tail = 253 SSE2 blocks + 1 tail:
        // both vector tails and both block loops are exercised.
        for seed in 1..=8u64 {
            let (xs, ys) = random_cols(1_013, seed);
            let region = Rect::new(111.0, 222.0, 666.5, 888.25);
            let mut scalar = Vec::new();
            filter_range_scalar(&xs, &ys, &region, 5, &mut scalar);
            let mut sse2 = Vec::new();
            filter_range_sse2(&xs, &ys, &region, 5, &mut sse2);
            assert_eq!(sse2, scalar, "seed {seed}");
            if std::arch::is_x86_feature_detected!("avx2") {
                let mut avx2 = Vec::new();
                // SAFETY: detection checked above.
                unsafe { filter_range_avx2(&xs, &ys, &region, 5, &mut avx2) };
                assert_eq!(avx2, scalar, "seed {seed}");
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn gather_widths_are_bit_identical() {
        let (xs, ys) = random_cols(1_013, 9);
        let ids: Vec<EntryId> = (0..xs.len()).map(|i| 7 + 3 * i as EntryId).collect();
        let region = Rect::new(100.0, 100.0, 800.0, 500.0);
        let mut scalar = Vec::new();
        for i in 0..xs.len() {
            if region.contains_point(xs[i], ys[i]) {
                scalar.push(ids[i]);
            }
        }
        let mut sse2 = Vec::new();
        filter_range_gather_each_sse2(&xs, &ys, &ids, &region, &mut |e| sse2.push(e));
        assert_eq!(sse2, scalar);
        if std::arch::is_x86_feature_detected!("avx2") {
            let mut avx2 = Vec::new();
            // SAFETY: detection checked above.
            unsafe {
                filter_range_gather_each_avx2(&xs, &ys, &ids, &region, &mut |e| avx2.push(e))
            };
            assert_eq!(avx2, scalar);
        }
        assert!(!scalar.is_empty());
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let region = Rect::new(0.0, 0.0, 1.0, 1.0);
        let mut out = Vec::new();
        filter_range(&[], &[], &region, 0, &mut out);
        assert!(out.is_empty());
        filter_range(&[0.5], &[0.5], &region, 7, &mut out);
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn base_offset_is_applied() {
        let region = Rect::new(0.0, 0.0, 10.0, 10.0);
        let xs = vec![5.0; 8];
        let ys = vec![5.0; 8];
        let mut out = Vec::new();
        filter_range(&xs, &ys, &region, 100, &mut out);
        assert_eq!(out, (100..108).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_columns_panic() {
        let mut out = Vec::new();
        filter_range(&[1.0], &[], &Rect::new(0.0, 0.0, 1.0, 1.0), 0, &mut out);
    }

    /// Random well-formed rect columns (x1 <= x2, y1 <= y2).
    fn random_rect_cols(n: usize, seed: u64) -> (Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>) {
        let mut rng = Xoshiro256::seeded(seed);
        let mut cols = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
        for _ in 0..n {
            let x1 = rng.range_f32(0.0, 950.0);
            let y1 = rng.range_f32(0.0, 950.0);
            cols.0.push(x1);
            cols.1.push(y1);
            cols.2.push(x1 + rng.range_f32(0.0, 50.0));
            cols.3.push(y1 + rng.range_f32(0.0, 50.0));
        }
        cols
    }

    /// Rectangles exactly touching every edge/corner of `[100,200]²`, plus
    /// just-outside near-misses, degenerate zero-area rects, and NaN
    /// lanes — the ties where `<=`/`<` (or a non-quiet compare) would
    /// diverge across widths.
    fn boundary_rect_cols() -> (Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>) {
        let mut cols = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
        let mut push = |x1: f32, y1: f32, x2: f32, y2: f32| {
            cols.0.push(x1);
            cols.1.push(y1);
            cols.2.push(x2);
            cols.3.push(y2);
        };
        push(50.0, 50.0, 100.0, 100.0); // corner touch
        push(200.0, 200.0, 250.0, 250.0); // opposite corner touch
        push(50.0, 120.0, 100.0, 130.0); // left edge touch
        push(200.0, 120.0, 250.0, 130.0); // right edge touch
        push(120.0, 50.0, 130.0, 100.0); // bottom edge touch
        push(120.0, 200.0, 130.0, 250.0); // top edge touch
        push(50.0, 120.0, 99.999, 130.0); // near miss left
        push(200.001, 120.0, 250.0, 130.0); // near miss right
        push(150.0, 150.0, 150.0, 150.0); // zero-area inside
        push(100.0, 100.0, 100.0, 100.0); // zero-area on the corner
        push(99.999, 99.999, 99.999, 99.999); // zero-area just outside
        push(f32::NAN, 120.0, 130.0, 130.0); // NaN lanes never match
        push(120.0, f32::NAN, 130.0, 130.0);
        push(120.0, 120.0, f32::NAN, 130.0);
        push(120.0, 120.0, 130.0, f32::NAN);
        push(0.0, 0.0, 300.0, 300.0); // strictly containing the query
        cols
    }

    #[test]
    fn overlap_filter_matches_rect_intersects_on_boundaries() {
        let region = Rect::new(100.0, 100.0, 200.0, 200.0);
        let (x1s, y1s, x2s, y2s) = boundary_rect_cols();
        let mut got = Vec::new();
        filter_overlap(&x1s, &y1s, &x2s, &y2s, &region, 0, &mut got);
        let mut expect = Vec::new();
        for i in 0..x1s.len() {
            // NaN lanes cannot construct a Rect (debug assert), so use the
            // raw closed-overlap conjunction as the oracle — identical to
            // Rect::intersects on well-formed rows.
            if region.x1 <= x2s[i]
                && x1s[i] <= region.x2
                && region.y1 <= y2s[i]
                && y1s[i] <= region.y2
            {
                expect.push(i as EntryId);
            }
        }
        assert_eq!(got, expect);
        // Touching edges/corners and degenerate rects all match; near
        // misses and NaN lanes never do.
        assert_eq!(expect, vec![0, 1, 2, 3, 4, 5, 8, 9, 15]);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn overlap_widths_are_bit_identical_on_random_columns() {
        // 1_013 exercises both vector tails (see the range-filter test).
        for seed in 1..=8u64 {
            let (x1s, y1s, x2s, y2s) = random_rect_cols(1_013, seed);
            let region = Rect::new(111.0, 222.0, 666.5, 888.25);
            let mut scalar = Vec::new();
            filter_overlap_each_scalar(&x1s, &y1s, &x2s, &y2s, &region, 5, &mut |e| scalar.push(e));
            let mut sse2 = Vec::new();
            filter_overlap_each_sse2(&x1s, &y1s, &x2s, &y2s, &region, 5, &mut |e| sse2.push(e));
            assert_eq!(sse2, scalar, "seed {seed}");
            if std::arch::is_x86_feature_detected!("avx2") {
                let mut avx2 = Vec::new();
                // SAFETY: detection checked above.
                unsafe {
                    filter_overlap_each_avx2(&x1s, &y1s, &x2s, &y2s, &region, 5, &mut |e| {
                        avx2.push(e)
                    })
                };
                assert_eq!(avx2, scalar, "seed {seed}");
            }
            assert!(!scalar.is_empty(), "seed {seed}");
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn overlap_widths_are_bit_identical_on_boundary_ties() {
        let region = Rect::new(100.0, 100.0, 200.0, 200.0);
        let (x1s, y1s, x2s, y2s) = boundary_rect_cols();
        let mut scalar = Vec::new();
        filter_overlap_each_scalar(&x1s, &y1s, &x2s, &y2s, &region, 0, &mut |e| scalar.push(e));
        let mut sse2 = Vec::new();
        filter_overlap_each_sse2(&x1s, &y1s, &x2s, &y2s, &region, 0, &mut |e| sse2.push(e));
        assert_eq!(sse2, scalar);
        if std::arch::is_x86_feature_detected!("avx2") {
            let mut avx2 = Vec::new();
            // SAFETY: detection checked above.
            unsafe {
                filter_overlap_each_avx2(&x1s, &y1s, &x2s, &y2s, &region, 0, &mut |e| avx2.push(e))
            };
            assert_eq!(avx2, scalar);
        }
    }

    #[test]
    fn overlap_filter_applies_base_offset_and_handles_empty_input() {
        let region = Rect::new(0.0, 0.0, 10.0, 10.0);
        let mut out = Vec::new();
        filter_overlap(&[], &[], &[], &[], &region, 0, &mut out);
        assert!(out.is_empty());
        let x1s = vec![5.0; 9];
        let y1s = vec![5.0; 9];
        let x2s = vec![6.0; 9];
        let y2s = vec![6.0; 9];
        filter_overlap(&x1s, &y1s, &x2s, &y2s, &region, 100, &mut out);
        assert_eq!(out, (100..109).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_extent_columns_panic() {
        let mut out = Vec::new();
        filter_overlap(
            &[1.0],
            &[1.0],
            &[],
            &[1.0],
            &Rect::new(0.0, 0.0, 1.0, 1.0),
            0,
            &mut out,
        );
    }

    #[test]
    fn gather_translates_through_id_column() {
        let (xs, ys) = random_cols(517, 3);
        let ids: Vec<EntryId> = (0..517).map(|i| 1000 + i as EntryId * 2).collect();
        let region = Rect::new(100.0, 100.0, 800.0, 500.0);
        let mut got = Vec::new();
        filter_range_gather(&xs, &ys, &ids, &region, &mut got);
        let mut expect = Vec::new();
        for i in 0..xs.len() {
            if region.contains_point(xs[i], ys[i]) {
                expect.push(ids[i]);
            }
        }
        assert_eq!(got, expect);
        assert!(!got.is_empty());
    }
}
