//! Two-dimensional geometry primitives.
//!
//! The paper's setting encodes coordinates as 4-byte values (`f32` here),
//! which is what makes the byte-level layout arguments of §3.1 work out:
//! a point is 8 bytes, so cache lines hold 8 points' worth of coordinates.
//!
//! All rectangles are *closed*: a point on the boundary is contained. Every
//! index in this workspace uses the same convention so their join results
//! are bit-identical (the integration tests assert this).

/// A 2-D point with single-precision coordinates.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Point {
    pub x: f32,
    pub y: f32,
}

impl Point {
    #[inline]
    pub const fn new(x: f32, y: f32) -> Self {
        Point { x, y }
    }

    /// Squared Euclidean distance to `other` (no sqrt; used by tests and
    /// the Gaussian workload's hotspot attraction).
    #[inline]
    pub fn dist2(&self, other: &Point) -> f32 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }
}

/// A 2-D velocity / displacement vector.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Vec2 {
    pub x: f32,
    pub y: f32,
}

impl Vec2 {
    #[inline]
    pub const fn new(x: f32, y: f32) -> Self {
        Vec2 { x, y }
    }

    /// Euclidean norm.
    #[inline]
    pub fn len(&self) -> f32 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Scale the vector so its norm is at most `max`; zero vectors are
    /// returned unchanged.
    #[inline]
    pub fn clamp_len(self, max: f32) -> Vec2 {
        let l = self.len();
        if l > max && l > 0.0 {
            let s = max / l;
            Vec2::new(self.x * s, self.y * s)
        } else {
            self
        }
    }
}

/// An axis-aligned rectangle, the paper's `Region2D`.
///
/// Invariant: `x1 <= x2 && y1 <= y2` (enforced by [`Rect::new`] in debug
/// builds; the workload generator only produces well-formed regions).
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Rect {
    pub x1: f32,
    pub y1: f32,
    pub x2: f32,
    pub y2: f32,
}

impl Rect {
    /// Build a rectangle from its lower-left and upper-right corners.
    #[inline]
    pub fn new(x1: f32, y1: f32, x2: f32, y2: f32) -> Self {
        debug_assert!(
            x1 <= x2 && y1 <= y2,
            "malformed rect: ({x1},{y1})-({x2},{y2})"
        );
        Rect { x1, y1, x2, y2 }
    }

    /// Fallible constructor for rectangles built from **untrusted input**
    /// (CLI arguments, trace files, parsed text): `None` unless
    /// `x1 <= x2 && y1 <= y2`, which also rejects any NaN coordinate
    /// (NaN fails every comparison). [`Rect::new`] only checks the
    /// invariant in debug builds — fine for the workload generators,
    /// which construct well-formed regions by arithmetic, but a release
    /// binary fed a malformed rect from outside must refuse it here
    /// rather than silently produce an empty-range region.
    #[inline]
    pub fn try_new(x1: f32, y1: f32, x2: f32, y2: f32) -> Option<Self> {
        if x1 <= x2 && y1 <= y2 {
            Some(Rect { x1, y1, x2, y2 })
        } else {
            None
        }
    }

    /// The square query region of side `side` centred at `c` — how the
    /// workload turns a querier's position into its range query.
    #[inline]
    pub fn centered_square(c: Point, side: f32) -> Self {
        let h = side * 0.5;
        Rect::new(c.x - h, c.y - h, c.x + h, c.y + h)
    }

    /// The full data space `[0, side]²`.
    #[inline]
    pub fn space(side: f32) -> Self {
        Rect::new(0.0, 0.0, side, side)
    }

    #[inline]
    pub fn width(&self) -> f32 {
        self.x2 - self.x1
    }

    #[inline]
    pub fn height(&self) -> f32 {
        self.y2 - self.y1
    }

    #[inline]
    pub fn area(&self) -> f32 {
        self.width() * self.height()
    }

    /// Closed-rectangle point containment.
    #[inline]
    pub fn contains_point(&self, x: f32, y: f32) -> bool {
        x >= self.x1 && x <= self.x2 && y >= self.y1 && y <= self.y2
    }

    /// `true` iff `other` lies entirely inside `self` (closed semantics).
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.x1 <= other.x1 && other.x2 <= self.x2 && self.y1 <= other.y1 && other.y2 <= self.y2
    }

    /// Closed-rectangle overlap test (touching edges do intersect).
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.x1 <= other.x2 && other.x1 <= self.x2 && self.y1 <= other.y2 && other.y1 <= self.y2
    }

    /// Clip `self` to `bounds`. Panics in debug builds if they are disjoint.
    #[inline]
    pub fn clipped_to(&self, bounds: &Rect) -> Rect {
        Rect::new(
            self.x1.max(bounds.x1),
            self.y1.max(bounds.y1),
            self.x2.min(bounds.x2),
            self.y2.min(bounds.y2),
        )
    }

    /// Smallest rectangle covering both `self` and `other`.
    #[inline]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            x1: self.x1.min(other.x1),
            y1: self.y1.min(other.y1),
            x2: self.x2.max(other.x2),
            y2: self.y2.max(other.y2),
        }
    }

    /// Grow the rectangle to cover `(x, y)`.
    #[inline]
    pub fn expand_to(&mut self, x: f32, y: f32) {
        self.x1 = self.x1.min(x);
        self.y1 = self.y1.min(y);
        self.x2 = self.x2.max(x);
        self.y2 = self.y2.max(y);
    }

    /// A degenerate rectangle at a point; useful as a fold seed together
    /// with [`Rect::expand_to`].
    #[inline]
    pub fn at_point(x: f32, y: f32) -> Rect {
        Rect {
            x1: x,
            y1: y,
            x2: x,
            y2: y,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_new_accepts_exactly_the_well_formed_rects() {
        assert_eq!(
            Rect::try_new(0.0, 1.0, 2.0, 3.0),
            Some(Rect::new(0.0, 1.0, 2.0, 3.0))
        );
        // Degenerate (zero-area) rects are well-formed.
        assert_eq!(
            Rect::try_new(5.0, 5.0, 5.0, 5.0),
            Some(Rect::at_point(5.0, 5.0))
        );
        assert_eq!(Rect::try_new(2.0, 0.0, 1.0, 3.0), None, "x inverted");
        assert_eq!(Rect::try_new(0.0, 3.0, 1.0, 2.0), None, "y inverted");
        assert_eq!(Rect::try_new(f32::NAN, 0.0, 1.0, 1.0), None);
        assert_eq!(Rect::try_new(0.0, 0.0, f32::NAN, 1.0), None);
        assert_eq!(Rect::try_new(0.0, f32::NAN, 1.0, 1.0), None);
        assert_eq!(Rect::try_new(0.0, 0.0, 1.0, f32::NAN), None);
    }

    #[test]
    fn centered_square_has_requested_side() {
        let r = Rect::centered_square(Point::new(100.0, 200.0), 400.0);
        assert_eq!(r.width(), 400.0);
        assert_eq!(r.height(), 400.0);
        assert!(r.contains_point(100.0, 200.0));
    }

    #[test]
    fn closed_containment_includes_boundary() {
        let r = Rect::new(0.0, 0.0, 10.0, 10.0);
        assert!(r.contains_point(0.0, 0.0));
        assert!(r.contains_point(10.0, 10.0));
        assert!(r.contains_point(10.0, 0.0));
        assert!(!r.contains_point(10.0001, 0.0));
        assert!(!r.contains_point(-0.0001, 5.0));
    }

    #[test]
    fn touching_rects_intersect() {
        let a = Rect::new(0.0, 0.0, 10.0, 10.0);
        let b = Rect::new(10.0, 10.0, 20.0, 20.0);
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        let c = Rect::new(10.1, 0.0, 20.0, 10.0);
        assert!(!a.intersects(&c));
    }

    #[test]
    fn contains_rect_is_reflexive_and_antisymmetric_unless_equal() {
        let a = Rect::new(0.0, 0.0, 10.0, 10.0);
        let b = Rect::new(2.0, 2.0, 8.0, 8.0);
        assert!(a.contains_rect(&a));
        assert!(a.contains_rect(&b));
        assert!(!b.contains_rect(&a));
    }

    #[test]
    fn clip_to_space() {
        let space = Rect::space(100.0);
        let q = Rect::centered_square(Point::new(0.0, 0.0), 40.0);
        let c = q.clipped_to(&space);
        assert_eq!(c, Rect::new(0.0, 0.0, 20.0, 20.0));
    }

    #[test]
    fn union_and_expand_agree() {
        let mut a = Rect::at_point(3.0, 4.0);
        a.expand_to(-1.0, 10.0);
        let b = Rect::at_point(3.0, 4.0).union(&Rect::at_point(-1.0, 10.0));
        assert_eq!(a, b);
    }

    #[test]
    fn clamp_len_caps_speed() {
        let v = Vec2::new(30.0, 40.0); // len 50
        let c = v.clamp_len(25.0);
        assert!((c.len() - 25.0).abs() < 1e-3);
        let small = Vec2::new(1.0, 0.0);
        assert_eq!(small.clamp_len(25.0), small);
        let zero = Vec2::default();
        assert_eq!(zero.clamp_len(25.0), zero);
    }

    #[test]
    fn dist2_matches_hand_computation() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert_eq!(a.dist2(&b), 25.0);
    }
}
