//! Incrementally maintained uniform grid — the u-Grid of the paper's
//! reference \[8\] (Šidlauskas et al., "Trees or Grids? Indexing Moving
//! Objects in Main Memory", GIS 2009).
//!
//! The static category rebuilds its index every tick; the update-time
//! category the original study also covers maintains it in place. This
//! grid keeps the refactored inline bucket layout and, on each
//! [`SpatialIndex::build`] call, *diffs* the base table against the
//! positions it indexed last tick: objects that stayed in their cell cost
//! one cell computation, objects that crossed a cell boundary are moved
//! with an O(1) delete (backfill from the head bucket) plus an O(1)
//! insert. Freed buckets go to a free list, so steady state allocates
//! nothing.
//!
//! The `ablation` bench compares this against rebuild-per-tick across
//! object speeds: the faster objects move, the more cell crossings, the
//! smaller the incremental advantage.

use sj_base::geom::Rect;
use sj_base::index::SpatialIndex;
use sj_base::table::{entry_id, entry_id_u64, EntryId, PointTable};

use crate::layout_original::NULL;

const BKT_NEXT: usize = 0;
const BKT_LEN: usize = 1;
const HEADER_SLOTS: usize = 2;

/// See module docs.
///
/// ```
/// use sj_base::{PointTable, Rect, SpatialIndex};
/// use sj_grid::IncrementalGrid;
///
/// let mut table = PointTable::default();
/// let id = table.push(100.0, 100.0);
///
/// let mut grid = IncrementalGrid::tuned(1000.0);
/// grid.build(&table);
///
/// // The object moves; the next build diffs and relocates it in place.
/// table.set_position(id, 900.0, 900.0);
/// grid.build(&table);
///
/// let mut hits = Vec::new();
/// grid.query(&table, &Rect::new(890.0, 890.0, 910.0, 910.0), &mut hits);
/// assert_eq!(hits, vec![id]);
/// ```
pub struct IncrementalGrid {
    cells_per_side: u32,
    bucket_size: u64,
    cell_size: f32,
    /// Head bucket handle per cell.
    cells: Vec<u64>,
    /// Flat bucket arena, `[next, len, entries…]` per bucket.
    buckets: Vec<u64>,
    /// Recycled bucket handles.
    free: Vec<u64>,
    /// Locator: bucket handle and slot of each indexed entry.
    loc_bucket: Vec<u64>,
    loc_slot: Vec<u32>,
    /// The positions as of the last build — the diff baseline.
    prev_x: Vec<f32>,
    prev_y: Vec<f32>,
    /// Liveness as of the last build. A `live -> dead` transition in the
    /// diff is an explicit O(1) delete; `dead` rows are simply not indexed.
    prev_live: Vec<bool>,
    /// Count of `true`s in `prev_live`, maintained on every transition so
    /// [`IncrementalGrid::len`] stays O(1).
    indexed: usize,
}

impl IncrementalGrid {
    /// Grid with the paper's tuned parameters (bs = 20, cps = 64) over
    /// `[0, space_side]²`.
    ///
    /// # Panics
    /// Panics if `space_side` is not positive.
    pub fn tuned(space_side: f32) -> Self {
        Self::new(
            crate::GridConfig::TUNED_CPS,
            crate::GridConfig::TUNED_BS,
            space_side,
        )
    }

    /// # Panics
    /// Panics on a degenerate geometry (`cps == 0`, `bs == 0`, or
    /// non-positive `space_side`).
    pub fn new(cells_per_side: u32, bucket_size: u32, space_side: f32) -> Self {
        assert!(
            cells_per_side > 0 && bucket_size > 0,
            "degenerate grid geometry"
        );
        assert!(space_side > 0.0, "space_side must be positive");
        IncrementalGrid {
            cells_per_side,
            bucket_size: bucket_size as u64,
            cell_size: space_side / cells_per_side as f32,
            cells: vec![NULL; (cells_per_side * cells_per_side) as usize],
            buckets: Vec::new(),
            free: Vec::new(),
            loc_bucket: Vec::new(),
            loc_slot: Vec::new(),
            prev_x: Vec::new(),
            prev_y: Vec::new(),
            prev_live: Vec::new(),
            indexed: 0,
        }
    }

    #[inline]
    fn cell_coord(&self, v: f32) -> u32 {
        ((v / self.cell_size) as u32).min(self.cells_per_side - 1)
    }

    #[inline]
    fn cell_of(&self, x: f32, y: f32) -> usize {
        (self.cell_coord(y) * self.cells_per_side + self.cell_coord(x)) as usize
    }

    fn alloc_bucket(&mut self, next: u64) -> u64 {
        if let Some(b) = self.free.pop() {
            let base = b as usize;
            self.buckets[base + BKT_NEXT] = next;
            self.buckets[base + BKT_LEN] = 0;
            b
        } else {
            let b = self.buckets.len() as u64;
            self.buckets.push(next);
            self.buckets.push(0);
            self.buckets
                .resize(self.buckets.len() + self.bucket_size as usize, 0);
            b
        }
    }

    fn insert(&mut self, cell: usize, entry: EntryId) {
        let head = self.cells[cell];
        let bucket = if head == NULL || self.buckets[head as usize + BKT_LEN] == self.bucket_size {
            let b = self.alloc_bucket(head);
            self.cells[cell] = b;
            b
        } else {
            head
        };
        let base = bucket as usize;
        let len = self.buckets[base + BKT_LEN];
        self.buckets[base + HEADER_SLOTS + len as usize] = entry as u64;
        self.buckets[base + BKT_LEN] = len + 1;
        self.loc_bucket[entry as usize] = bucket;
        self.loc_slot[entry as usize] = len as u32;
    }

    /// Remove `entry` from `cell` by backfilling its slot with the head
    /// bucket's last entry. Invariant: only the head bucket of a chain is
    /// ever partially filled, so the backfill source is always the head.
    fn remove(&mut self, cell: usize, entry: EntryId) {
        let head = self.cells[cell];
        debug_assert_ne!(head, NULL, "removing from an empty cell");
        let head_base = head as usize;
        let head_len = self.buckets[head_base + BKT_LEN];
        debug_assert!(head_len > 0, "head bucket of a non-empty cell is empty");

        let hole_bucket = self.loc_bucket[entry as usize];
        let hole_slot = self.loc_slot[entry as usize] as usize;
        debug_assert_eq!(
            self.buckets[hole_bucket as usize + HEADER_SLOTS + hole_slot],
            entry as u64,
            "locator out of sync"
        );

        let last_slot = head_len as usize - 1;
        let last_entry = self.buckets[head_base + HEADER_SLOTS + last_slot];
        // Move the head's last entry into the hole (self-move when the
        // removed entry *is* the last of the head).
        self.buckets[hole_bucket as usize + HEADER_SLOTS + hole_slot] = last_entry;
        self.loc_bucket[last_entry as usize] = hole_bucket;
        self.loc_slot[last_entry as usize] = hole_slot as u32;
        self.buckets[head_base + BKT_LEN] = head_len - 1;

        if head_len == 1 {
            self.cells[cell] = self.buckets[head_base + BKT_NEXT];
            self.free.push(head);
        }
        self.loc_bucket[entry as usize] = NULL;
    }

    /// Full (re)population: used on the first build and whenever the base
    /// table *shrank* (impossible under the tombstone model, where slots
    /// are never reclaimed — but kept so a hand-built smaller table stays
    /// valid). Indexes live rows only.
    fn rebuild(&mut self, table: &PointTable) {
        self.cells.fill(NULL);
        self.buckets.clear();
        self.free.clear();
        let n = table.len();
        self.loc_bucket.clear();
        self.loc_bucket.resize(n, NULL);
        self.loc_slot.clear();
        self.loc_slot.resize(n, 0);
        self.prev_x.clear();
        self.prev_x.extend_from_slice(table.xs());
        self.prev_y.clear();
        self.prev_y.extend_from_slice(table.ys());
        self.prev_live.clear();
        self.prev_live.extend_from_slice(table.live_mask());
        self.indexed = 0;
        for i in 0..n {
            if self.prev_live[i] {
                let cell = self.cell_of(self.prev_x[i], self.prev_y[i]);
                self.insert(cell, entry_id(i));
                self.indexed += 1;
            }
        }
    }

    /// Number of buckets currently on the free list (tests use this to
    /// verify steady-state recycling).
    pub fn free_buckets(&self) -> usize {
        self.free.len()
    }

    /// Entries currently indexed (live rows as of the last build). O(1).
    pub fn len(&self) -> usize {
        self.indexed
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Debug validation: every live entry's locator points at a slot
    /// holding it, every dead entry is unlocated, and chain lengths are
    /// consistent. O(n); test-only.
    pub fn validate(&self) -> Result<(), String> {
        let live_count = self.prev_live.iter().filter(|&&l| l).count();
        if live_count != self.indexed {
            return Err(format!(
                "indexed counter {} out of sync with live mask {live_count}",
                self.indexed
            ));
        }
        for e in 0..self.loc_bucket.len() {
            let b = self.loc_bucket[e];
            if !self.prev_live[e] {
                if b != NULL {
                    return Err(format!("dead entry {e} still has a location"));
                }
                continue;
            }
            if b == NULL {
                return Err(format!("entry {e} has no location"));
            }
            let slot = self.loc_slot[e] as usize;
            if self.buckets[b as usize + HEADER_SLOTS + slot] != e as u64 {
                return Err(format!("locator of entry {e} is stale"));
            }
        }
        Ok(())
    }
}

impl SpatialIndex for IncrementalGrid {
    fn name(&self) -> &str {
        "Simple Grid (incremental)"
    }

    fn build(&mut self, table: &PointTable) {
        if table.len() < self.prev_x.len() {
            self.rebuild(table);
            return;
        }
        let xs = table.xs();
        let ys = table.ys();
        let live = table.live_mask();
        // Diff the rows indexed last tick: moves relocate, departures are
        // explicit O(1) deletes (tombstoned rows never resurrect, but a
        // dead->live transition is handled as an insert for robustness).
        for i in 0..self.prev_x.len() {
            let id = entry_id(i);
            match (self.prev_live[i], live[i]) {
                (true, true) => {
                    let (nx, ny) = (xs[i], ys[i]);
                    let (px, py) = (self.prev_x[i], self.prev_y[i]);
                    if nx != px || ny != py {
                        let old_cell = self.cell_of(px, py);
                        let new_cell = self.cell_of(nx, ny);
                        if old_cell != new_cell {
                            self.remove(old_cell, id);
                            self.insert(new_cell, id);
                        }
                        self.prev_x[i] = nx;
                        self.prev_y[i] = ny;
                    }
                }
                (true, false) => {
                    self.remove(self.cell_of(self.prev_x[i], self.prev_y[i]), id);
                    self.prev_live[i] = false;
                    self.indexed -= 1;
                }
                (false, true) => {
                    let (nx, ny) = (xs[i], ys[i]);
                    self.insert(self.cell_of(nx, ny), id);
                    self.prev_x[i] = nx;
                    self.prev_y[i] = ny;
                    self.prev_live[i] = true;
                    self.indexed += 1;
                }
                (false, false) => {}
            }
        }
        // Rows appended since the last build (churn arrivals): O(1) insert
        // each — population growth does not trigger a full rebuild.
        for i in self.prev_x.len()..table.len() {
            self.prev_x.push(xs[i]);
            self.prev_y.push(ys[i]);
            self.prev_live.push(live[i]);
            self.loc_bucket.push(NULL);
            self.loc_slot.push(0);
            if live[i] {
                self.insert(self.cell_of(xs[i], ys[i]), entry_id(i));
                self.indexed += 1;
            }
        }
    }

    fn for_each_in(&self, table: &PointTable, region: &Rect, emit: &mut dyn FnMut(EntryId)) {
        // Algorithm 2 over the inline layout, like the refactored grid.
        let cx1 = self.cell_coord(region.x1.max(0.0));
        let cx2 = self.cell_coord(region.x2.max(0.0));
        let cy1 = self.cell_coord(region.y1.max(0.0));
        let cy2 = self.cell_coord(region.y2.max(0.0));
        for cy in cy1..=cy2 {
            for cx in cx1..=cx2 {
                let cell_rect = Rect::new(
                    cx as f32 * self.cell_size,
                    cy as f32 * self.cell_size,
                    (cx + 1) as f32 * self.cell_size,
                    (cy + 1) as f32 * self.cell_size,
                );
                let cell = (cy * self.cells_per_side + cx) as usize;
                let full = region.contains_rect(&cell_rect);
                let mut b = self.cells[cell];
                while b != NULL {
                    let base = b as usize;
                    let len = self.buckets[base + BKT_LEN] as usize;
                    for slot in 0..len {
                        let e = entry_id_u64(self.buckets[base + HEADER_SLOTS + slot]);
                        if full || region.contains_point(table.x(e), table.y(e)) {
                            emit(e);
                        }
                    }
                    b = self.buckets[base + BKT_NEXT];
                }
            }
        }
    }

    fn memory_bytes(&self) -> usize {
        // Allocated-capacity convention (see the trait docs): every arena
        // the incremental structure keeps resident between ticks — the
        // directory, bucket arena, locator maps, and the previous-tick
        // position/liveness shadow it diffs against.
        self.cells.capacity() * 8
            + self.buckets.capacity() * 8
            + self.loc_bucket.capacity() * 8
            + self.loc_slot.capacity() * 4
            + self.prev_x.capacity() * 4
            + self.prev_y.capacity() * 4
            + self.prev_live.capacity()
    }

    fn fork(&self) -> Box<dyn SpatialIndex + Send + Sync> {
        // `cell_size` was derived as side / cps in `new`; undo the division
        // to reconstruct with the same directory and bucket geometry.
        Box::new(IncrementalGrid::new(
            self.cells_per_side,
            self.bucket_size as u32,
            self.cell_size * self.cells_per_side as f32,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_base::index::ScanIndex;
    use sj_base::rng::Xoshiro256;

    const SIDE: f32 = 1_000.0;

    fn random_table(n: usize, seed: u64) -> PointTable {
        let mut rng = Xoshiro256::seeded(seed);
        let mut t = PointTable::default();
        for _ in 0..n {
            t.push(rng.range_f32(0.0, SIDE), rng.range_f32(0.0, SIDE));
        }
        t
    }

    fn sorted_query(idx: &dyn SpatialIndex, t: &PointTable, r: &Rect) -> Vec<EntryId> {
        let mut out = Vec::new();
        idx.query(t, r, &mut out);
        out.sort_unstable();
        out
    }

    #[test]
    fn initial_build_agrees_with_scan() {
        let t = random_table(2_000, 31);
        let mut g = IncrementalGrid::tuned(SIDE);
        g.build(&t);
        g.validate().unwrap();
        let mut scan = ScanIndex::new();
        scan.build(&t);
        let r = Rect::new(100.0, 100.0, 400.0, 380.0);
        assert_eq!(sorted_query(&g, &t, &r), sorted_query(&scan, &t, &r));
    }

    #[test]
    fn stays_correct_through_many_movement_ticks() {
        let mut rng = Xoshiro256::seeded(33);
        let mut t = random_table(1_000, 32);
        let mut g = IncrementalGrid::tuned(SIDE);
        let scan = ScanIndex::new();
        g.build(&t);
        for tick in 0..30 {
            // Move ~70% of objects by up to ±60 units.
            for i in 0..t.len() as EntryId {
                if rng.bernoulli(0.7) {
                    let x = (t.x(i) + rng.range_f32(-60.0, 60.0)).clamp(0.0, SIDE);
                    let y = (t.y(i) + rng.range_f32(-60.0, 60.0)).clamp(0.0, SIDE);
                    t.set_position(i, x, y);
                }
            }
            g.build(&t);
            g.validate().unwrap_or_else(|e| panic!("tick {tick}: {e}"));
            for _ in 0..5 {
                let c =
                    sj_base::geom::Point::new(rng.range_f32(0.0, SIDE), rng.range_f32(0.0, SIDE));
                let r = Rect::centered_square(c, 120.0).clipped_to(&Rect::space(SIDE));
                assert_eq!(
                    sorted_query(&g, &t, &r),
                    sorted_query(&scan, &t, &r),
                    "tick {tick}, query {r:?}"
                );
            }
        }
    }

    #[test]
    fn full_space_query_conserves_population() {
        let mut t = random_table(500, 35);
        let mut g = IncrementalGrid::tuned(SIDE);
        g.build(&t);
        for i in 0..t.len() as EntryId {
            t.set_position(i, SIDE - t.x(i), SIDE - t.y(i));
        }
        g.build(&t);
        assert_eq!(sorted_query(&g, &t, &Rect::space(SIDE)).len(), 500);
    }

    #[test]
    fn buckets_are_recycled_not_leaked() {
        // Shuttle a tight cluster back and forth between two corners; the
        // arena must reach a steady size instead of growing per tick.
        let mut t = PointTable::default();
        for i in 0..200 {
            t.push(10.0 + (i % 14) as f32, 10.0 + (i / 14) as f32);
        }
        let mut g = IncrementalGrid::new(16, 4, SIDE);
        g.build(&t);
        let mut arena_after_warmup = 0;
        for tick in 0..20 {
            let offset = if tick % 2 == 0 { 900.0 } else { 10.0 };
            for i in 0..t.len() as EntryId {
                let (dx, dy) = ((i % 14) as f32, (i / 14) as f32);
                t.set_position(i, offset + dx, offset + dy);
            }
            g.build(&t);
            g.validate().unwrap();
            if tick == 2 {
                arena_after_warmup = g.buckets.len();
            }
        }
        assert_eq!(
            g.buckets.len(),
            arena_after_warmup,
            "bucket arena kept growing"
        );
        assert!(g.free_buckets() > 0, "free list never used");
    }

    #[test]
    fn population_size_change_triggers_rebuild() {
        let t1 = random_table(300, 36);
        let t2 = random_table(400, 37);
        let mut g = IncrementalGrid::tuned(SIDE);
        g.build(&t1);
        g.build(&t2);
        g.validate().unwrap();
        assert_eq!(sorted_query(&g, &t2, &Rect::space(SIDE)).len(), 400);
    }

    #[test]
    fn agrees_with_rebuilding_grid_in_tick_loop() {
        use crate::SimpleGrid;
        let mut rng = Xoshiro256::seeded(40);
        let mut t = random_table(1_500, 41);
        let mut inc = IncrementalGrid::tuned(SIDE);
        let mut full = SimpleGrid::tuned(SIDE);
        for _ in 0..10 {
            for i in 0..t.len() as EntryId {
                let x = (t.x(i) + rng.range_f32(-30.0, 30.0)).clamp(0.0, SIDE);
                let y = (t.y(i) + rng.range_f32(-30.0, 30.0)).clamp(0.0, SIDE);
                t.set_position(i, x, y);
            }
            inc.build(&t);
            full.build(&t);
            let c = sj_base::geom::Point::new(rng.range_f32(0.0, SIDE), rng.range_f32(0.0, SIDE));
            let r = Rect::centered_square(c, 200.0).clipped_to(&Rect::space(SIDE));
            assert_eq!(sorted_query(&inc, &t, &r), sorted_query(&full, &t, &r));
        }
    }

    #[test]
    fn removals_are_explicit_deletes_in_the_diff() {
        let mut t = random_table(600, 61);
        let mut g = IncrementalGrid::tuned(SIDE);
        g.build(&t);
        assert_eq!(g.len(), 600);
        for id in (0..600).step_by(4) {
            t.remove(id);
        }
        g.build(&t);
        g.validate().unwrap();
        assert_eq!(g.len(), t.live_len());
        let scan = ScanIndex::new();
        let r = Rect::space(SIDE);
        assert_eq!(sorted_query(&g, &t, &r), sorted_query(&scan, &t, &r));
        assert_eq!(sorted_query(&g, &t, &r).len(), t.live_len());
    }

    #[test]
    fn growth_is_incremental_not_a_rebuild() {
        let mut t = random_table(300, 62);
        let mut g = IncrementalGrid::tuned(SIDE);
        g.build(&t);
        // Arrivals append; departures tombstone; survivors move a little —
        // one combined tick of churn, diffed in place.
        let mut rng = Xoshiro256::seeded(63);
        for _ in 0..50 {
            t.push(rng.range_f32(0.0, SIDE), rng.range_f32(0.0, SIDE));
        }
        for id in [3u32, 77, 150, 299] {
            t.remove(id);
        }
        for i in 0..t.len() as EntryId {
            if t.is_live(i) && rng.bernoulli(0.5) {
                let x = (t.x(i) + rng.range_f32(-40.0, 40.0)).clamp(0.0, SIDE);
                let y = (t.y(i) + rng.range_f32(-40.0, 40.0)).clamp(0.0, SIDE);
                t.set_position(i, x, y);
            }
        }
        g.build(&t);
        g.validate().unwrap();
        let scan = ScanIndex::new();
        for _ in 0..10 {
            let c = sj_base::geom::Point::new(rng.range_f32(0.0, SIDE), rng.range_f32(0.0, SIDE));
            let r = Rect::centered_square(c, 150.0).clipped_to(&Rect::space(SIDE));
            assert_eq!(
                sorted_query(&g, &t, &r),
                sorted_query(&scan, &t, &r),
                "{r:?}"
            );
        }
    }

    #[test]
    fn degenerate_geometry_is_rejected() {
        let r = std::panic::catch_unwind(|| IncrementalGrid::new(0, 4, SIDE));
        assert!(r.is_err());
        let r = std::panic::catch_unwind(|| IncrementalGrid::new(16, 4, 0.0));
        assert!(r.is_err());
    }
}
