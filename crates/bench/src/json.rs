//! A minimal JSON parser for the trajectory tooling.
//!
//! `bench_compare` has to read `BENCH_*.json` files back, and the
//! container has no serde — so this is the read half of the hand-rolled
//! pair whose write half is [`crate::report::JsonLine`]. It is a strict
//! recursive-descent parser over the JSON grammar (objects, arrays,
//! strings with escapes, numbers, booleans, `null`): in particular the
//! bare `NaN`/`inf`/`Infinity` tokens some writers emit for non-finite
//! floats are **rejected with a targeted error**, because a trajectory
//! file poisoned by a non-finite timing must fail loudly, not parse as
//! something else (see the ISSUE-6 satellite on non-finite `JsonLine`
//! fields).
//!
//! Scope: exactly what the suite needs. No streaming, no comments, no
//! trailing commas, objects keep insertion order in a `Vec` (duplicate
//! keys are a parse error — the writer debug-asserts against them, the
//! reader must not silently last-one-wins either).

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// JSON numbers are IEEE doubles; 64-bit integers that need lossless
    /// round-trips (the join checksum) travel as hex strings instead.
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered; keys are unique (enforced at parse time).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the top-level value"));
        }
        Ok(v)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a number with an
    /// exact `u64` representation (counts, tick numbers, seeds).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            // `fract() == 0.0` is the exact integer-valuedness test; no
            // epsilon is meaningful here.
            // sj-lint: allow(float-eq)
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

/// A parse failure: byte offset plus message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Nesting bound: the suite's documents are two levels deep; anything
/// deeper than this is hostile or corrupt, and bounding recursion keeps
/// the parser panic-free on adversarial input.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    /// Consume `word` if it is next (used for the keyword literals).
    fn literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting deeper than the suite schema allows"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') if self.literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.literal("null") => Ok(Json::Null),
            // The poison tokens this parser exists to catch: a writer that
            // formatted a non-finite float. Name them explicitly so the
            // error says what went wrong upstream, not just "bad char".
            Some(b'N' | b'I') if self.non_finite_token() => Err(self.err(
                "non-finite number token (NaN/Infinity) — not valid JSON; \
                 the producing run emitted a non-finite measurement",
            )),
            Some(b'i') if self.non_finite_token() => Err(self.err(
                "non-finite number token (inf) — not valid JSON; \
                 the producing run emitted a non-finite measurement",
            )),
            Some(b'-')
                if self.bytes[self.pos..].starts_with(b"-inf")
                    || self.bytes[self.pos..].starts_with(b"-Infinity")
                    || self.bytes[self.pos..].starts_with(b"-NaN") =>
            {
                Err(self.err(
                    "non-finite number token — not valid JSON; \
                     the producing run emitted a non-finite measurement",
                ))
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn non_finite_token(&self) -> bool {
        let rest = &self.bytes[self.pos..];
        rest.starts_with(b"NaN") || rest.starts_with(b"Infinity") || rest.starts_with(b"inf")
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key_at = self.pos;
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                self.pos = key_at;
                return Err(self.err(format!("duplicate object key {key:?}")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by \u-escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                if !self.literal("\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000
                                    + ((unit as u32 - 0xD800) << 10)
                                    + (low as u32 - 0xDC00);
                                char::from_u32(cp).ok_or_else(|| self.err("bad surrogate pair"))?
                            } else if (0xDC00..0xE000).contains(&unit) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(unit as u32)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            // hex4 leaves pos past the last digit; skip the
                            // shared `self.pos += 1` below.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => {
                    // Multi-byte UTF-8 is passed through verbatim; the
                    // input is a &str so the bytes are valid.
                    let start = self.pos;
                    self.pos += 1;
                    while self.peek().is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input is a &str, so its bytes are valid UTF-8"),
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let end = self.pos + 4;
        let digits = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(digits).map_err(|_| self.err("invalid \\u escape"))?;
        let v = u16::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_at = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == digits_at {
            return Err(self.err("expected digits in number"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_at = self.pos;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_at {
                return Err(self.err("expected digits after decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_at = self.pos;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_at {
                return Err(self.err("expected digits in exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number lexemes are ASCII, a subset of valid UTF-8");
        let n: f64 = text
            .parse()
            .map_err(|_| self.err(format!("invalid number {text:?}")))?;
        if !n.is_finite() {
            // Syntactically valid but overflowing (e.g. 1e999): reject —
            // a trajectory must never carry a non-finite value.
            return Err(self.err(format!("number {text:?} overflows to infinity")));
        }
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Json {
        Json::parse(s).unwrap()
    }

    #[test]
    fn scalars_and_keywords() {
        assert_eq!(parse("null"), Json::Null);
        assert_eq!(parse("true"), Json::Bool(true));
        assert_eq!(parse("false"), Json::Bool(false));
        assert_eq!(parse("0"), Json::Num(0.0));
        assert_eq!(parse("-12.5e2"), Json::Num(-1250.0));
        assert_eq!(parse(r#""hi""#), Json::Str("hi".into()));
    }

    #[test]
    fn objects_keep_order_and_arrays_nest() {
        let v = parse(r#"{"b":1,"a":[2,{"c":null}]}"#);
        assert_eq!(v.get("b").and_then(Json::as_f64), Some(1.0));
        let arr = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr[0], Json::Num(2.0));
        assert!(arr[1].get("c").unwrap().is_null());
        // Insertion order preserved.
        match &v {
            Json::Obj(fields) => assert_eq!(fields[0].0, "b"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn writer_output_round_trips() {
        use crate::report::JsonLine;
        let line = JsonLine::new("suite")
            .str("technique", "Simple Grid \"quoted\"\n\t\\")
            .num("x", 0.5)
            .num("bad", f64::NAN)
            .int("n", 123)
            .finish();
        let v = parse(&line);
        assert_eq!(v.get("bench").and_then(Json::as_str), Some("suite"));
        assert_eq!(
            v.get("technique").and_then(Json::as_str),
            Some("Simple Grid \"quoted\"\n\t\\")
        );
        assert_eq!(v.get("x").and_then(Json::as_f64), Some(0.5));
        assert!(v.get("bad").unwrap().is_null());
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(123));
    }

    #[test]
    fn escapes_and_unicode() {
        assert_eq!(
            parse(r#""a\u0041\n\u00e9\u20ac""#),
            Json::Str("aA\né€".into())
        );
        // Surrogate pair: U+1F600.
        assert_eq!(parse(r#""\ud83d\ude00""#), Json::Str("😀".into()));
        assert!(Json::parse(r#""\ud83d""#).is_err()); // lone high surrogate
        assert!(Json::parse("\"a\nb\"").is_err()); // raw control char
    }

    #[test]
    fn non_finite_tokens_are_rejected_with_a_targeted_error() {
        for text in [
            "NaN",
            "inf",
            "-inf",
            "Infinity",
            "-Infinity",
            r#"{"avg_tick_s":NaN}"#,
            r#"{"avg_tick_s":inf}"#,
        ] {
            let err = Json::parse(text).unwrap_err();
            assert!(
                err.msg.contains("non-finite"),
                "{text}: unexpected error {err}"
            );
        }
        // Overflowing literals are equally non-finite.
        assert!(Json::parse("1e999").unwrap_err().msg.contains("overflows"));
    }

    #[test]
    fn malformed_documents_error_not_panic() {
        for text in [
            "",
            "{",
            "[",
            "{\"a\"}",
            "{\"a\":1,}",
            "[1,]",
            "tru",
            "nul",
            "\"",
            "01x",
            "1 2",
            "{\"a\":1}extra",
            "--1",
            "1.",
            "1e",
            "\"\\q\"",
            "\"\\u12\"",
        ] {
            assert!(Json::parse(text).is_err(), "{text:?} should not parse");
        }
    }

    #[test]
    fn duplicate_object_keys_are_a_parse_error() {
        let err = Json::parse(r#"{"a":1,"a":2}"#).unwrap_err();
        assert!(err.msg.contains("duplicate"), "{err}");
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(30) + &"]".repeat(30);
        assert!(Json::parse(&ok).is_ok());
    }
}
