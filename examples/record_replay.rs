//! Record a workload to a trace file and replay it bit-identically — the
//! plumbing behind trace-driven (simulation) workloads in the original
//! framework, and a handy tool for comparing implementations across
//! processes or languages on the exact same input.
//!
//! Run: `cargo run --release --example record_replay`

use spatial_joins::prelude::*;
use spatial_joins::workload::{record, Trace, TraceWorkload};

fn main() {
    let params = WorkloadParams {
        num_points: 10_000,
        ticks: 8,
        ..WorkloadParams::default()
    };
    let cfg = DriverConfig::new(params.ticks, 0);

    // 1. Run the live workload.
    let live = {
        let mut workload = UniformWorkload::new(params);
        let mut grid = SimpleGrid::tuned(params.space_side);
        run_join(&mut workload, &mut grid, cfg)
    };

    // 2. Record the identical workload to a file.
    let path = std::env::temp_dir().join("spatial_joins_demo.sjtrace");
    {
        let mut workload = UniformWorkload::new(params);
        let trace = record(&mut workload, params.ticks);
        trace.save(&path).expect("write trace");
        println!(
            "recorded {} points x {} ticks to {} ({} KiB)",
            trace.num_points(),
            trace.num_ticks(),
            path.display(),
            std::fs::metadata(&path)
                .map(|m| m.len() / 1024)
                .unwrap_or(0)
        );
    }

    // 3. Replay from the file and join with a *different* technique.
    let replayed = {
        let trace = Trace::load(&path).expect("read trace");
        let mut workload = TraceWorkload::new(trace);
        let mut rtree = RTree::default();
        run_join(&mut workload, &mut rtree, cfg)
    };
    let _ = std::fs::remove_file(&path);

    println!(
        "live   grid : {} pairs, checksum {:#x}",
        live.result_pairs, live.checksum
    );
    println!(
        "replay rtree: {} pairs, checksum {:#x}",
        replayed.result_pairs, replayed.checksum
    );
    assert_eq!(
        live.checksum, replayed.checksum,
        "replay diverged from the live run"
    );
    println!("replayed join is bit-identical to the live run.");
}
