//! The pinned benchmark trajectory suite (`bench_suite`).
//!
//! Every PR's performance claims are judged against a committed
//! `BENCH_<n>.json` snapshot. The snapshot is only meaningful if the cells
//! it pins are *identical* run to run — same seeds, same populations, same
//! tick counts, same technique line-up — so this module hard-codes the
//! matrix instead of deriving it from CLI defaults that a later PR might
//! retune:
//!
//! - **table2** — the per-phase breakdown for every benchmarkable registry
//!   technique, over uniform, Gaussian-hotspot, and churn populations
//!   (self-join), plus a bipartite `uniform ⋈ gaussian:h3` at ratio 10 for
//!   a core subset, plus four intersection-join (`intersect:rects`) cells
//!   over the intersects-capable lane — the two-layer partitioning join
//!   and the tuned grid, sequentially and under `@tiles4`/`@par2`.
//! - **scaling** — the query phase at 1/2/4/8 workers for a core subset:
//!   the Tsitsigkos-style sharded (`@par`) thread cells, plus the
//!   space-partitioned (`@tiles<N>`) cells racing them — over uniform at
//!   every count, over the skewed `gaussian:h3` at 4 tiles (skew is where
//!   tiling's per-tile imbalance shows), and one bipartite tiled cell.
//!   Since PR 9 the race has a third lane: pooled cells
//!   (`@tiles16@par<N>` — an oversharded grid drained by a shared
//!   mini-join worker pool, DESIGN.md §14) at the same worker counts,
//!   adaptive cells (`@tilesauto`), and pooled-vs-tiled skew cells at 8
//!   workers. Tiled/pooled cells carry their mode in the technique spec
//!   string, so they reuse the schema unchanged (`threads` stays 0 and
//!   older comparators simply see new cell ids).
//! - **asymmetry** — the |R|/|S| ∈ {1/100, 1/10, 1, 10} bipartite cells
//!   for a small subset.
//!
//! Two parameter scales share the matrix: **full** (committed baselines)
//! and **quick** (CI smoke). A cell's identity is its `cell` string; its
//! *comparability* additionally requires equal `ticks`/`points`/`seed`/
//! `threads` — [`crate::compare`] refuses to diff timings across scales.
//!
//! The document is assembled by hand (one cell object per line, flat via
//! [`crate::report::JsonLine`]) and read back by [`crate::json`]; schema
//! changes must bump [`SCHEMA_VERSION`].

use sj_core::driver::RunStats;
use sj_core::par::ExecMode;
use sj_core::technique::{registry, TechniqueSpec};
use sj_workload::{JoinSpec, WorkloadKind, WorkloadParams, WorkloadSpec};

use crate::report::JsonLine;
use crate::{run_asymmetric_cell, run_joined_spec, run_workload_spec};

/// Bump on any change to the document layout or cell record fields.
pub const SCHEMA_VERSION: u64 = 1;

/// Every suite cell runs at this workload seed (the repo-wide golden
/// seed; the determinism suite pins checksums at the same value).
pub const SUITE_SEED: u64 = 42;

/// Full-scale parameters (committed `BENCH_<n>.json` baselines).
pub const FULL_POINTS: u32 = 20_000;
pub const FULL_TICKS: u32 = 6;

/// Quick-scale parameters (CI smoke; same matrix, smaller cells).
pub const QUICK_POINTS: u32 = 4_000;
pub const QUICK_TICKS: u32 = 3;

/// The thread counts of the scaling cells.
pub const SCALING_THREADS: [usize; 4] = [1, 2, 4, 8];

/// The tile counts of the space-partitioned scaling cells (same x-axis as
/// [`SCALING_THREADS`], so the two modes race cell for cell).
pub const SCALING_TILES: [usize; 4] = [1, 2, 4, 8];

/// The asymmetry cells' `(r_scale, s_scale)` divisors (relation population
/// = `points / scale`), mirroring the asymmetry binary's sweep.
pub const ASYMMETRY_SCALES: [(u32, u32); 4] = [(100, 1), (10, 1), (1, 1), (1, 10)];

/// One pinned cell: what to run and under which knobs. `threads == 0`
/// means a sequential query phase; scaling cells set it to their worker
/// count. Asymmetry cells carry explicit relation scales; every other
/// cell has `scales == (1, 1)`.
#[derive(Clone, Debug)]
pub struct CellSpec {
    pub bench: &'static str,
    pub technique: TechniqueSpec,
    pub workload: WorkloadSpec,
    pub join: JoinSpec,
    pub threads: usize,
    pub scales: (u32, u32),
}

impl CellSpec {
    /// The cell's identity string — stable across parameter scales, unique
    /// within the matrix (asserted by tests).
    pub fn id(&self) -> String {
        let mut id = format!("{}/{}", self.bench, self.join.name());
        if self.join.is_self() {
            id.push('/');
            id.push_str(&self.workload.name());
        }
        if self.scales != (1, 1) {
            id.push_str(&format!("/r{}s{}", self.scales.0, self.scales.1));
        }
        id.push('/');
        id.push_str(&self.technique.name());
        if self.threads > 0 {
            id.push_str(&format!("/t{}", self.threads));
        }
        id
    }
}

/// A completed cell: the spec, the exact parameters it ran at, and the
/// driver's measurements.
#[derive(Clone, Debug)]
pub struct CellResult {
    pub spec: CellSpec,
    pub ticks: u32,
    pub points: u32,
    pub seed: u64,
    pub stats: RunStats,
}

/// Core subset for the sweeps that would explode combinatorially over the
/// whole registry: the tuned grids, the static R-tree, and the plane sweep
/// cover the three technique categories (grid, tree, specialized join).
fn core_subset() -> Vec<TechniqueSpec> {
    ["grid:bs-tuned", "grid:inline", "rtree:str", "sweep"]
        .iter()
        .map(|s| TechniqueSpec::parse(s).expect("core subset specs are canonical"))
        .collect()
}

/// The full pinned matrix, in a deterministic order.
pub fn cell_matrix() -> Vec<CellSpec> {
    let uniform = WorkloadKind::Uniform.spec();
    let gaussian = WorkloadSpec::parse("gaussian:h3").expect("registry spec");
    let churn = WorkloadSpec::parse("churn:uniform").expect("registry spec");
    let bipartite = JoinSpec::parse("bipartite:uniformxgaussian:h3:ratio10").expect("join spec");

    let mut cells = Vec::new();
    // table2: every benchmarkable technique × the three population models.
    for wspec in [uniform, gaussian, churn] {
        for spec in registry().into_iter().filter(|s| s.is_benchmarkable()) {
            cells.push(CellSpec {
                bench: "table2",
                technique: spec,
                workload: wspec,
                join: JoinSpec::SelfJoin,
                threads: 0,
                scales: (1, 1),
            });
        }
    }
    // table2, bipartite shape: the core subset plus the remaining tree and
    // point-quantized techniques keep the R ⋈ S path on the trajectory.
    for name in [
        "grid:bs-tuned",
        "grid:inline",
        "rtree:str",
        "crtree",
        "kdtrie",
        "sweep",
    ] {
        cells.push(CellSpec {
            bench: "table2",
            technique: TechniqueSpec::parse(name).expect("canonical spec"),
            workload: uniform,
            join: bipartite,
            threads: 0,
            scales: (1, 1),
        });
    }
    // scaling: core subset × worker counts, uniform self-join.
    for spec in core_subset() {
        for n in SCALING_THREADS {
            cells.push(CellSpec {
                bench: "scaling",
                technique: spec,
                workload: uniform,
                join: JoinSpec::SelfJoin,
                threads: n,
                scales: (1, 1),
            });
        }
    }
    // scaling, space-partitioned: the same subset × tile counts. The mode
    // lives in the spec (`…@tilesN`), not the `threads` knob — `run_cell`
    // promotes the spec's embedded exec, and the cell id stays unique
    // through the technique name.
    for spec in core_subset() {
        for n in SCALING_TILES {
            cells.push(CellSpec {
                bench: "scaling",
                technique: spec
                    .with_exec(ExecMode::partitioned(n).expect("pinned tile counts are nonzero")),
                workload: uniform,
                join: JoinSpec::SelfJoin,
                threads: 0,
                scales: (1, 1),
            });
        }
    }
    // Tiling under skew (the hotspot tiles do most of the work) and across
    // the bipartite join shape.
    for name in ["grid:inline@tiles4", "rtree:str@tiles4"] {
        cells.push(CellSpec {
            bench: "scaling",
            technique: TechniqueSpec::parse(name).expect("canonical spec"),
            workload: gaussian,
            join: JoinSpec::SelfJoin,
            threads: 0,
            scales: (1, 1),
        });
    }
    cells.push(CellSpec {
        bench: "table2",
        technique: TechniqueSpec::parse("grid:inline@tiles4").expect("canonical spec"),
        workload: uniform,
        join: bipartite,
        threads: 0,
        scales: (1, 1),
    });
    // scaling, pooled: the same subset with a 16-tile oversharded grid
    // drained by worker pools at the scaling counts — racing the @tilesN
    // lane above, where the tile count *is* the worker count.
    for spec in core_subset() {
        for n in SCALING_TILES {
            cells.push(CellSpec {
                bench: "scaling",
                technique: spec
                    .with_exec(ExecMode::pooled(16, n).expect("pinned pool shapes are nonzero")),
                workload: uniform,
                join: JoinSpec::SelfJoin,
                threads: 0,
                scales: (1, 1),
            });
        }
    }
    // scaling, adaptive: the density-sized tiling, sequential pool.
    for spec in core_subset() {
        cells.push(CellSpec {
            bench: "scaling",
            technique: spec.with_exec(ExecMode::adaptive()),
            workload: uniform,
            join: JoinSpec::SelfJoin,
            threads: 0,
            scales: (1, 1),
        });
    }
    // Pooled and adaptive under skew at full pool width — the load-balance
    // story this PR exists for: the hotspot tile's mini-joins spread over
    // all 8 workers instead of bounding the tick.
    for name in [
        "grid:inline@tiles16@par8",
        "rtree:str@tiles16@par8",
        "grid:inline@tilesauto@par8",
        "rtree:str@tilesauto@par8",
    ] {
        cells.push(CellSpec {
            bench: "scaling",
            technique: TechniqueSpec::parse(name).expect("canonical spec"),
            workload: gaussian,
            join: JoinSpec::SelfJoin,
            threads: 0,
            scales: (1, 1),
        });
    }
    // One pooled bipartite cell keeps the R ⋈ S path in the pooled lane.
    cells.push(CellSpec {
        bench: "table2",
        technique: TechniqueSpec::parse("grid:inline@tiles4@par2").expect("canonical spec"),
        workload: uniform,
        join: bipartite,
        threads: 0,
        scales: (1, 1),
    });
    // table2, intersection join: the intersects-predicate lane — the
    // two-layer partitioning join raced against the tuned grid's extent
    // store, sequentially and under the partitioned/sharded modes (which
    // must stay bit-identical; the determinism tests pin that, the suite
    // pins the timings).
    for name in [
        "twolayer",
        "grid:inline",
        "grid:inline@tiles4",
        "twolayer@par2",
    ] {
        cells.push(CellSpec {
            bench: "table2",
            technique: TechniqueSpec::parse(name).expect("canonical spec"),
            workload: uniform,
            join: JoinSpec::Intersect,
            threads: 0,
            scales: (1, 1),
        });
    }
    // asymmetry: |R|/|S| cells over uniform ⋈ gaussian:h3.
    let asym_join = JoinSpec::bipartite(uniform, gaussian);
    for spec in core_subset() {
        for scales in ASYMMETRY_SCALES {
            cells.push(CellSpec {
                bench: "asymmetry",
                technique: spec,
                workload: uniform,
                join: asym_join,
                threads: 0,
                scales,
            });
        }
    }
    cells
}

/// The pinned parameters for one scale.
pub fn suite_params(quick: bool) -> WorkloadParams {
    WorkloadParams {
        ticks: if quick { QUICK_TICKS } else { FULL_TICKS },
        num_points: if quick { QUICK_POINTS } else { FULL_POINTS },
        seed: SUITE_SEED,
        ..WorkloadParams::default()
    }
}

/// Run one cell at the given scale.
pub fn run_cell(spec: &CellSpec, quick: bool) -> CellResult {
    let params = suite_params(quick);
    let stats = if spec.scales != (1, 1) {
        let (r_spec, s_spec) = spec
            .join
            .workloads()
            .expect("asymmetry cells are bipartite");
        let r_points = (params.num_points / spec.scales.0).max(1);
        let s_points = (params.num_points / spec.scales.1).max(1);
        run_asymmetric_cell(
            r_spec,
            s_spec,
            r_points,
            s_points,
            &params,
            spec.technique,
            ExecMode::Sequential,
        )
    } else if spec.threads > 0 {
        let exec = ExecMode::parallel(spec.threads).expect("pinned thread counts are nonzero");
        run_workload_spec(
            spec.workload,
            &params,
            spec.technique.with_exec(exec),
            ExecMode::Sequential,
        )
    } else {
        run_joined_spec(
            spec.join,
            spec.workload,
            &params,
            spec.technique,
            ExecMode::Sequential,
        )
    };
    CellResult {
        spec: spec.clone(),
        ticks: params.ticks,
        points: params.num_points,
        seed: params.seed,
        stats,
    }
}

/// One flat JSON object for a completed cell (the document's `cells`
/// elements; also what the round-trip tests feed the parser).
pub fn cell_line(r: &CellResult) -> String {
    JsonLine::new(r.spec.bench)
        .str("cell", &r.spec.id())
        .str("technique", &r.spec.technique.name())
        .str("workload", &r.spec.workload.name())
        .str("join", &r.spec.join.name())
        .int("threads", r.spec.threads as u64)
        .int("ticks", r.ticks as u64)
        .int("points", r.points as u64)
        .int("seed", r.seed)
        .stats(&r.stats)
        .finish()
}

/// Assemble the schema-versioned suite document: a small header plus one
/// cell object per line (line-oriented so `BENCH_*.json` diffs review
/// cell by cell).
pub fn document(results: &[CellResult], quick: bool) -> String {
    let mut doc = String::new();
    doc.push_str(&format!(
        "{{\"suite\":\"sj-bench\",\"schema_version\":{SCHEMA_VERSION},\
         \"mode\":\"{}\",\"seed\":{SUITE_SEED},\"cells\":[\n",
        if quick { "quick" } else { "full" }
    ));
    for (i, r) in results.iter().enumerate() {
        doc.push_str(&cell_line(r));
        if i + 1 < results.len() {
            doc.push(',');
        }
        doc.push('\n');
    }
    doc.push_str("]}\n");
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use std::collections::HashSet;

    #[test]
    fn matrix_cell_ids_are_unique_and_stable() {
        let cells = cell_matrix();
        assert!(cells.len() > 50, "matrix shrank to {}", cells.len());
        let ids: HashSet<String> = cells.iter().map(CellSpec::id).collect();
        assert_eq!(ids.len(), cells.len(), "duplicate cell ids");
        // Spot-check the id grammar each bench family uses.
        assert!(ids.contains("table2/self/uniform/grid:inline"));
        assert!(ids.contains("table2/self/churn:uniform/sweep"));
        assert!(ids.contains("table2/bipartite:uniformxgaussian:h3:ratio10/rtree:str"));
        assert!(ids.contains("scaling/self/uniform/grid:bs-tuned/t8"));
        assert!(ids.contains("scaling/self/uniform/grid:bs-tuned@tiles8"));
        assert!(ids.contains("scaling/self/gaussian:h3/grid:inline@tiles4"));
        assert!(ids.contains("table2/bipartite:uniformxgaussian:h3:ratio10/grid:inline@tiles4"));
        assert!(ids.contains("scaling/self/uniform/grid:bs-tuned@tiles16@par8"));
        assert!(ids.contains("scaling/self/uniform/sweep@tilesauto"));
        assert!(ids.contains("scaling/self/gaussian:h3/rtree:str@tilesauto@par8"));
        assert!(
            ids.contains("table2/bipartite:uniformxgaussian:h3:ratio10/grid:inline@tiles4@par2")
        );
        assert!(ids.contains("asymmetry/bipartite:uniformxgaussian:h3/r100s1/sweep"));
        assert!(ids.contains("table2/intersect:rects/twolayer"));
        assert!(ids.contains("table2/intersect:rects/grid:inline@tiles4"));
        assert!(ids.contains("table2/intersect:rects/twolayer@par2"));
    }

    #[test]
    fn matrix_covers_the_pinned_axes() {
        let cells = cell_matrix();
        let benches: HashSet<&str> = cells.iter().map(|c| c.bench).collect();
        assert_eq!(benches.len(), 3);
        // Self + bipartite + intersect, uniform + gaussian + churn,
        // 1/2/4/8 threads.
        assert!(cells.iter().any(|c| !c.join.is_self()));
        assert!(cells.iter().any(|c| c.join.is_intersect()));
        // Every intersect cell names an intersects-capable technique.
        for c in cells.iter().filter(|c| c.join.is_intersect()) {
            assert!(c.technique.supports_intersects(), "{}", c.id());
        }
        for w in ["uniform", "gaussian:h3", "churn:uniform"] {
            assert!(
                cells
                    .iter()
                    .any(|c| c.join.is_self() && c.workload.name() == w),
                "no self cell over {w}"
            );
        }
        for n in SCALING_THREADS {
            assert!(cells.iter().any(|c| c.threads == n));
        }
        // Every tile count appears as a @tilesN cell, every scaling count
        // as a pooled @tiles16@parN cell, and the tiled cells never
        // double-book the threads knob (one mode per cell).
        for n in SCALING_TILES {
            assert!(cells
                .iter()
                .any(|c| c.technique.exec == ExecMode::partitioned(n).unwrap()));
            assert!(cells
                .iter()
                .any(|c| c.technique.exec == ExecMode::pooled(16, n).unwrap()));
        }
        assert!(cells
            .iter()
            .any(|c| c.technique.exec == ExecMode::adaptive()));
        for c in &cells {
            if c.technique.exec != ExecMode::Sequential {
                assert_eq!(c.threads, 0, "{} mixes modes", c.id());
            }
        }
        // Every benchmarkable registry technique appears somewhere.
        for spec in registry().into_iter().filter(|s| s.is_benchmarkable()) {
            assert!(
                cells.iter().any(|c| c.technique == spec),
                "{} missing from the matrix",
                spec.name()
            );
        }
    }

    #[test]
    fn quick_cells_run_and_the_document_parses() {
        // Two cheap-but-distinct cells end to end through the real runner
        // (the full matrix is exercised by the bench_suite binary and CI).
        let cells = cell_matrix();
        let picks: Vec<&CellSpec> = cells.iter().filter(|c| c.spec_is_cheap()).take(3).collect();
        assert!(picks.len() >= 2);
        let results: Vec<CellResult> = picks.iter().map(|c| run_cell(c, true)).collect();
        for r in &results {
            assert!(r.stats.result_pairs > 0, "{}: no pairs", r.spec.id());
            assert_eq!(r.points, QUICK_POINTS);
        }
        let doc = document(&results, true);
        let v = Json::parse(&doc).expect("suite document must be valid JSON");
        assert_eq!(
            v.get("schema_version").and_then(Json::as_u64),
            Some(SCHEMA_VERSION)
        );
        assert_eq!(v.get("mode").and_then(Json::as_str), Some("quick"));
        let parsed_cells = v.get("cells").and_then(Json::as_array).unwrap();
        assert_eq!(parsed_cells.len(), results.len());
        for (cell, r) in parsed_cells.iter().zip(&results) {
            assert_eq!(
                cell.get("cell").and_then(Json::as_str),
                Some(r.spec.id()).as_deref()
            );
            assert_eq!(
                cell.get("checksum").and_then(Json::as_str),
                Some(format!("{:#x}", r.stats.checksum)).as_deref()
            );
            assert_eq!(
                cell.get("points").and_then(Json::as_u64),
                Some(QUICK_POINTS as u64)
            );
        }
    }

    impl CellSpec {
        /// Test helper: cells cheap enough for the unit-test tier.
        fn spec_is_cheap(&self) -> bool {
            self.join.is_self()
                && self.threads == 0
                && self.workload.name() == "uniform"
                && matches!(
                    self.technique.name().as_str(),
                    "grid:inline" | "sweep" | "kdtrie"
                )
        }
    }
}
