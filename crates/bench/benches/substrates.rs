//! Criterion microbenchmarks for the substrates: Morton encoding, the
//! radix sort behind the throwaway KD-trie rebuild, and the cache
//! simulator's per-access cost.

use criterion::{criterion_group, criterion_main, Criterion};
use sj_core::rng::Xoshiro256;
use sj_core::trace::Tracer;
use sj_kdtrie::{encode, sort_by_code};
use sj_memsim::CacheSim;
use std::hint::black_box;

fn bench_morton(c: &mut Criterion) {
    let mut rng = Xoshiro256::seeded(1);
    let pts: Vec<(u16, u16)> = (0..4096)
        .map(|_| (rng.next_u32() as u16, rng.next_u32() as u16))
        .collect();
    c.bench_function("morton_encode_4096", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &(x, y) in &pts {
                acc = acc.wrapping_add(encode(black_box(x), black_box(y)));
            }
            black_box(acc)
        })
    });
}

fn bench_radix(c: &mut Criterion) {
    let mut rng = Xoshiro256::seeded(2);
    let keys: Vec<u64> = (0..50_000).map(|_| rng.next_u64()).collect();
    let mut scratch = Vec::new();
    c.bench_function("radix_sort_50k", |b| {
        b.iter(|| {
            let mut k = keys.clone();
            sort_by_code(&mut k, &mut scratch);
            black_box(k.len())
        })
    });
}

fn bench_cachesim(c: &mut Criterion) {
    let mut rng = Xoshiro256::seeded(3);
    let addrs: Vec<u64> = (0..10_000).map(|_| rng.next_u64() & 0xFF_FFFF).collect();
    c.bench_function("cachesim_10k_accesses", |b| {
        let mut sim = CacheSim::i7();
        b.iter(|| {
            for &a in &addrs {
                sim.read(black_box(a), 8);
            }
            black_box(sim.stats().l1_misses)
        })
    });
}

criterion_group!(benches, bench_morton, bench_radix, bench_cachesim);
criterion_main!(benches);
