//! The join-shape registry axis: self-join vs. bipartite R ⋈ S.
//!
//! The paper (and the frozen Table 1 workloads) only ever join a moving
//! set with itself — the queriers are a subset of the indexed population.
//! The related work this repository also reproduces (Tsitsigkos &
//! Mamoulis, *Parallel In-Memory Evaluation of Spatial Joins*; Tsitsigkos
//! et al., *A Two-level Spatial In-Memory Index*) evaluates exclusively
//! the **two-dataset** case: a query relation R probing a data relation S,
//! typically with |R| ≪ |S|. [`JoinSpec`] names that axis the registry way
//! (`sj_core::technique::TechniqueSpec`, [`crate::WorkloadSpec`]): a spec
//! string parses to a value, the value names itself back, and the harness
//! binaries and integration matrices sweep it.
//!
//! Grammar:
//!
//! - `self` — the degenerate R = S case (the paper's setting);
//! - `bipartite:<R-workload>x<S-workload>[:ratio<K>]` — an R ⋈ S join
//!   whose relations are driven by two independent [`Workload`]s, e.g.
//!   `bipartite:uniformxgaussian:h3` or
//!   `bipartite:churn:uniformxuniform:ratio10`. The relation separator is
//!   the **first** `x` in the remainder — unambiguous because no workload
//!   spec string contains one — and `ratio<K>` (default 1) shrinks the
//!   query relation to `|R| = max(1, num_points / K)` while S keeps the
//!   configured population, giving the canonical small-R / large-S shape;
//! - `intersect:rects` — the **intersects-predicate** self-join over
//!   extent entries: rectangles instead of points, a querier's query
//!   region is its own extent, and matches are closed rectangle
//!   overlaps. Driven by [`crate::RectsWorkload`] through
//!   [`sj_base::driver::ExtentWorkload`] (`rects` is currently the only
//!   extent workload). Only techniques advertising
//!   `supports_intersects()` can run it.
//!
//! Both relations are built over the same space/speed/query parameters;
//! R's seed is decorrelated from S's ([`mix64`] of the base seed), so
//! `bipartite:uniformxuniform` is two *independent* uniform populations,
//! not two copies of one.

use std::fmt;
use std::num::NonZeroU32;

use sj_base::driver::{ExtentWorkload, Workload};
use sj_base::rng::mix64;

use crate::params::WorkloadParams;
use crate::spec::WorkloadSpec;

/// Salt folded into the query relation's seed so R and S draw from
/// decorrelated streams even when both relations name the same workload.
const QUERY_REL_SEED_SALT: u64 = 0x5253_4A4F_494E; // "RSJOIN"

/// A parseable, nameable handle for the join shape — `Copy`, like the
/// technique and workload specs, so matrix sweeps are cheap to filter and
/// re-instantiate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum JoinSpec {
    /// The paper's self-join: one moving set, queriers drawn from it.
    SelfJoin,
    /// Bipartite R ⋈ S: `r` drives the query relation, `s` the data
    /// relation, `ratio` divides R's population (`|R| = max(1,
    /// num_points / ratio)`, `|S| = num_points`).
    Bipartite {
        r: WorkloadSpec,
        s: WorkloadSpec,
        ratio: NonZeroU32,
    },
    /// The intersects-predicate self-join over extent entries
    /// (`intersect:rects`): the uniform moving-rectangle workload, each
    /// planned querier joined against the whole table under closed
    /// rectangle overlap.
    Intersect,
}

/// Error from [`JoinSpec::parse`]: the offending spec plus (via `Display`)
/// the grammar.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseJoinError {
    pub spec: String,
}

impl fmt::Display for ParseJoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown join spec {:?} (expected `self`, \
             `bipartite:<R-workload>x<S-workload>[:ratio<K>]`, e.g. \
             bipartite:uniformxgaussian:h3:ratio10, with workload specs as \
             in --list-workloads; or `intersect:rects`, the \
             intersects-predicate extent self-join)",
            self.spec
        )
    }
}

impl std::error::Error for ParseJoinError {}

impl JoinSpec {
    /// A bipartite spec at ratio 1 (equal populations).
    pub const fn bipartite(r: WorkloadSpec, s: WorkloadSpec) -> JoinSpec {
        JoinSpec::Bipartite {
            r,
            s,
            ratio: NonZeroU32::MIN,
        }
    }

    /// The same bipartite spec with a different |S| : |R| ratio; identity
    /// on `self`.
    pub fn with_ratio(self, ratio: NonZeroU32) -> JoinSpec {
        match self {
            JoinSpec::SelfJoin => JoinSpec::SelfJoin,
            JoinSpec::Bipartite { r, s, .. } => JoinSpec::Bipartite { r, s, ratio },
            JoinSpec::Intersect => JoinSpec::Intersect,
        }
    }

    /// Canonical spec string; [`JoinSpec::parse`] inverts it. The ratio
    /// suffix is omitted at its default of 1.
    pub fn name(&self) -> String {
        match self {
            JoinSpec::SelfJoin => "self".to_string(),
            JoinSpec::Intersect => "intersect:rects".to_string(),
            JoinSpec::Bipartite { r, s, ratio } => {
                if ratio.get() == 1 {
                    format!("bipartite:{}x{}", r.name(), s.name())
                } else {
                    format!("bipartite:{}x{}:ratio{}", r.name(), s.name(), ratio)
                }
            }
        }
    }

    /// Display label for table headers.
    pub fn label(&self) -> String {
        match self {
            JoinSpec::SelfJoin => "Self-join".to_string(),
            JoinSpec::Intersect => "Intersection self-join (rects)".to_string(),
            JoinSpec::Bipartite { r, s, ratio } => {
                if ratio.get() == 1 {
                    format!("{} ⋈ {}", r.label(), s.label())
                } else {
                    format!("{} ⋈ {} (|R| = |S|/{})", r.label(), s.label(), ratio)
                }
            }
        }
    }

    /// Parse a spec string (see the module docs for the grammar).
    pub fn parse(spec: &str) -> Result<JoinSpec, ParseJoinError> {
        let err = || ParseJoinError {
            spec: spec.to_string(),
        };
        if spec == "self" {
            return Ok(JoinSpec::SelfJoin);
        }
        if let Some(extent) = spec.strip_prefix("intersect:") {
            // `rects` is the only extent workload so far; the prefix form
            // keeps the grammar open for more.
            return match extent {
                "rects" => Ok(JoinSpec::Intersect),
                _ => Err(err()),
            };
        }
        let rest = spec.strip_prefix("bipartite:").ok_or_else(err)?;
        // Optional trailing `:ratio<K>`. Workload names never contain the
        // substring ":ratio", so splitting on its last occurrence is safe.
        let (pair, ratio) = match rest.rsplit_once(":ratio") {
            Some((pair, k)) => {
                let k: NonZeroU32 = k.parse().map_err(|_| err())?;
                (pair, k)
            }
            None => (rest, NonZeroU32::MIN),
        };
        // The relation separator is the first `x`: no workload spec string
        // contains one, so everything before it is R, everything after S.
        let (r, s) = pair.split_once('x').ok_or_else(err)?;
        let r = WorkloadSpec::parse(r).map_err(|_| err())?;
        let s = WorkloadSpec::parse(s).map_err(|_| err())?;
        Ok(JoinSpec::Bipartite { r, s, ratio })
    }

    /// Whether this is the degenerate self-join.
    pub const fn is_self(&self) -> bool {
        matches!(self, JoinSpec::SelfJoin)
    }

    /// Whether this is the intersects-predicate extent join: it runs
    /// through `sj_base::driver::run_intersect_join` /
    /// `run_intersect_batch_join` and only techniques implementing the
    /// predicate can execute it.
    pub const fn is_intersect(&self) -> bool {
        matches!(self, JoinSpec::Intersect)
    }

    /// The R and S workload specs of a bipartite join (`None` for `self`
    /// and `intersect:*`, whose single workload is configured elsewhere).
    pub fn workloads(&self) -> Option<(WorkloadSpec, WorkloadSpec)> {
        match self {
            JoinSpec::SelfJoin | JoinSpec::Intersect => None,
            JoinSpec::Bipartite { r, s, .. } => Some((*r, *s)),
        }
    }

    /// Whether either relation's workload churns its population.
    pub fn has_churn(&self) -> bool {
        match self {
            JoinSpec::SelfJoin | JoinSpec::Intersect => false,
            JoinSpec::Bipartite { r, s, .. } => r.has_churn() || s.has_churn(),
        }
    }

    /// Construct the extent workload of an `intersect:*` join over
    /// `params`. `None` for the point-predicate shapes.
    pub fn build_extents(&self, params: WorkloadParams) -> Option<Box<dyn ExtentWorkload>> {
        match self {
            JoinSpec::Intersect => Some(Box::new(crate::rects::RectsWorkload::new(params))),
            _ => None,
        }
    }

    /// Query-relation parameters: the shared knobs of `base` with the
    /// population divided by the ratio and the seed decorrelated from S's.
    pub fn query_rel_params(&self, base: WorkloadParams) -> WorkloadParams {
        let ratio = match self {
            JoinSpec::Bipartite { ratio, .. } => ratio.get(),
            JoinSpec::SelfJoin | JoinSpec::Intersect => 1,
        };
        WorkloadParams {
            num_points: (base.num_points / ratio).max(1),
            seed: mix64(base.seed ^ QUERY_REL_SEED_SALT),
            ..base
        }
    }

    /// Construct the two relation workloads of a bipartite join over the
    /// shared `params` — `(R, S)`, with R at [`JoinSpec::query_rel_params`]
    /// and S at `params` itself. `None` for `self`.
    pub fn build_pair(
        &self,
        params: WorkloadParams,
    ) -> Option<(Box<dyn Workload>, Box<dyn Workload>)> {
        let (r, s) = self.workloads()?;
        Some((r.build(self.query_rel_params(params)), s.build(params)))
    }
}

impl std::str::FromStr for JoinSpec {
    type Err = ParseJoinError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        JoinSpec::parse(s)
    }
}

impl fmt::Display for JoinSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadKind;
    use sj_base::driver::TickActions;

    fn ratio(k: u32) -> NonZeroU32 {
        NonZeroU32::new(k).unwrap()
    }

    #[test]
    fn self_spec_round_trips() {
        let s = JoinSpec::parse("self").unwrap();
        assert_eq!(s, JoinSpec::SelfJoin);
        assert!(s.is_self());
        assert_eq!(s.name(), "self");
        assert_eq!(s.workloads(), None);
    }

    #[test]
    fn bipartite_specs_round_trip_through_parse_and_name() {
        let samples = [
            "bipartite:uniformxuniform",
            "bipartite:uniformxgaussian:h3",
            "bipartite:gaussian:h3xuniform",
            "bipartite:churn:uniformxroadgrid",
            "bipartite:uniformxchurn:gaussian:h10",
            "bipartite:uniformxuniform:ratio10",
            "bipartite:gaussian:h5xchurn:uniform:ratio100",
        ];
        for s in samples {
            let spec = JoinSpec::parse(s).unwrap();
            assert!(!spec.is_self(), "{s}");
            assert_eq!(spec.name(), s, "canonical form must match the input");
            assert_eq!(JoinSpec::parse(&spec.name()), Ok(spec), "{s}");
        }
    }

    #[test]
    fn aliases_canonicalize_inside_the_pair() {
        let spec = JoinSpec::parse("bipartite:gaussianxrtree-is-not-real")
            .map(|s| s.name())
            .unwrap_err();
        assert_eq!(spec.spec, "bipartite:gaussianxrtree-is-not-real");
        let spec = JoinSpec::parse("bipartite:gaussianxuniform").unwrap();
        assert_eq!(spec.name(), "bipartite:gaussian:h10xuniform");
        let (r, s) = spec.workloads().unwrap();
        assert_eq!(r.kind, WorkloadKind::Gaussian { hotspots: 10 });
        assert_eq!(s.kind, WorkloadKind::Uniform);
    }

    #[test]
    fn intersect_spec_round_trips() {
        let s = JoinSpec::parse("intersect:rects").unwrap();
        assert_eq!(s, JoinSpec::Intersect);
        assert!(s.is_intersect());
        assert!(!s.is_self());
        assert_eq!(s.name(), "intersect:rects");
        assert_eq!(JoinSpec::parse(&s.name()), Ok(s));
        assert_eq!(s.workloads(), None);
        assert!(!s.has_churn());
        assert_eq!(s.build_pair(WorkloadParams::default()).map(|_| ()), None);
    }

    #[test]
    fn intersect_spec_builds_the_rect_workload() {
        use sj_base::driver::ExtentTickActions;
        let params = WorkloadParams {
            num_points: 300,
            space_side: 5_000.0,
            ..WorkloadParams::default()
        };
        let mut w = JoinSpec::Intersect.build_extents(params).unwrap();
        let set = w.init();
        assert_eq!(set.len(), 300);
        let mut a = ExtentTickActions::default();
        w.plan_tick(0, &set, &mut a);
        assert!(!a.queriers.is_empty());
        // Point-predicate shapes have no extent workload.
        assert!(JoinSpec::SelfJoin.build_extents(params).is_none());
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for bad in [
            "",
            "selfx",
            "bipartite",
            "bipartite:",
            "bipartite:uniform",
            "bipartite:uniformx",
            "bipartite:xuniform",
            "bipartite:uniformxuniform:ratio0",
            "bipartite:uniformxuniform:ratio-3",
            "bipartite:uniformxuniform:ratioX",
            "bipartite:nopexuniform",
            "ratio10",
            "intersect",
            "intersect:",
            "intersect:points",
            "intersect:rectsx",
        ] {
            let err = JoinSpec::parse(bad).unwrap_err();
            assert_eq!(err.spec, bad);
            let msg = err.to_string();
            assert!(msg.contains("bipartite:<R-workload>x<S-workload>"), "{msg}");
        }
    }

    #[test]
    fn ratio_divides_the_query_relation_population() {
        let base = WorkloadParams {
            num_points: 5_000,
            ..WorkloadParams::default()
        };
        let spec = JoinSpec::parse("bipartite:uniformxuniform:ratio10").unwrap();
        let r = spec.query_rel_params(base);
        assert_eq!(r.num_points, 500);
        assert_ne!(r.seed, base.seed, "R's stream must be decorrelated");
        // Extreme ratios never drop to an empty relation.
        let tiny = spec.with_ratio(ratio(1_000_000)).query_rel_params(base);
        assert_eq!(tiny.num_points, 1);
        // ratio is surfaced in the canonical name only when non-default.
        assert_eq!(
            spec.with_ratio(ratio(1)).name(),
            "bipartite:uniformxuniform"
        );
    }

    #[test]
    fn build_pair_produces_two_live_relations() {
        let base = WorkloadParams {
            num_points: 800,
            space_side: 6_000.0,
            ..WorkloadParams::default()
        };
        let spec = JoinSpec::bipartite(
            WorkloadKind::Uniform.spec(),
            WorkloadKind::Gaussian { hotspots: 3 }.spec(),
        )
        .with_ratio(ratio(4));
        let (mut r, mut s) = spec.build_pair(base).unwrap();
        let (r_set, s_set) = (r.init(), s.init());
        assert_eq!(r_set.live_len(), 200);
        assert_eq!(s_set.live_len(), 800);
        assert_eq!(r.space(), s.space(), "relations share the data space");
        // Decorrelated seeds: independent populations even for identical
        // workload kinds.
        let same = JoinSpec::bipartite(WorkloadKind::Uniform.spec(), WorkloadKind::Uniform.spec());
        let (mut r2, mut s2) = same.build_pair(base).unwrap();
        let (r2s, s2s) = (r2.init(), s2.init());
        assert_eq!(r2s.live_len(), s2s.live_len());
        assert_ne!(
            r2s.positions.point(0),
            s2s.positions.point(0),
            "R must not be a copy of S"
        );
        // And both plan queries when asked (the driver drops S's).
        let mut a = TickActions::default();
        r2.plan_tick(0, &r2s, &mut a);
        assert!(!a.queriers.is_empty());
        assert_eq!(JoinSpec::SelfJoin.build_pair(base).map(|_| ()), None);
    }

    #[test]
    fn churn_flag_reflects_either_relation() {
        assert!(!JoinSpec::SelfJoin.has_churn());
        assert!(!JoinSpec::parse("bipartite:uniformxuniform")
            .unwrap()
            .has_churn());
        assert!(JoinSpec::parse("bipartite:churn:uniformxuniform")
            .unwrap()
            .has_churn());
        assert!(JoinSpec::parse("bipartite:uniformxchurn:roadgrid")
            .unwrap()
            .has_churn());
    }
}
