//! The reference-point rule behind `@tiles<N>` (DESIGN.md §13).
//!
//! Space-partitioned execution replicates every row into each tile its
//! query region overlaps, so a pair whose two sides straddle a tile
//! boundary is *visible* in more than one tile. Exactness rests on one
//! filter: tile `T` emits `(a, b)` only if `b`'s canonical tile is `T`.
//! These tests pin that rule directly against a brute-force sequential
//! join — queries straddling two and four tiles, points landing exactly
//! on tile edges (the boundary-tie lattice idiom from
//! `proptest_simd.rs`: closed-rect ties are where `>=`-vs-`>` mistakes
//! hide), and a churn step where a row dies out of every replica set
//! that held a copy.

use std::num::NonZeroUsize;

use proptest::prelude::*;
use spatial_joins::core::driver::fold_pair;
use spatial_joins::core::par::{tiled_index_build, tiled_index_query, TileIndexPool, Tiling};
use spatial_joins::core::tile::{replicate_by_extent, TileGrid, TileReplica, MINI_JOIN_CHUNK};
use spatial_joins::prelude::*;

/// Side of the test space; a 2 × 2 grid puts the interior edges at 50,
/// a 4 × 4 grid at 25 / 50 / 75.
const SIDE: f32 = 100.0;

fn space() -> Rect {
    Rect::space(SIDE)
}

fn grid(tiles: usize) -> TileGrid {
    TileGrid::new(&space(), NonZeroUsize::new(tiles).unwrap())
}

/// Ground truth: every `(querier, match)` pair of the self-join, one
/// entry each, in sorted order.
fn sequential_pairs(t: &PointTable, query_side: f32) -> Vec<(EntryId, EntryId)> {
    let space = space();
    let mut out = Vec::new();
    for (a, p) in t.iter() {
        let region = Rect::centered_square(p, query_side).clipped_to(&space);
        for (b, q) in t.iter() {
            if region.contains_point(q.x, q.y) {
                out.push((a, b));
            }
        }
    }
    out.sort_unstable();
    out
}

/// The tiled join, spelled out: partition by extent, assign each querier
/// to every covered tile, join against the local replicas. With `dedup`
/// the reference-point filter is applied; without it the raw
/// (double-reporting) pair stream comes back — the delta is exactly what
/// the rule exists to remove.
fn tiled_pairs(
    t: &PointTable,
    query_side: f32,
    tiles: usize,
    dedup: bool,
) -> Vec<(EntryId, EntryId)> {
    let space = space();
    let grid = grid(tiles);
    let mut replicas: Vec<TileReplica> = Vec::new();
    replicate_by_extent(t, &grid, query_side, &mut replicas);
    let mut out = Vec::new();
    for (a, p) in t.iter() {
        let region = Rect::centered_square(p, query_side).clipped_to(&space);
        for tid in grid.cover(&region) {
            let r = &replicas[tid];
            for local in 0..r.table.len() {
                let (x, y) = (r.table.xs()[local], r.table.ys()[local]);
                if region.contains_point(x, y) && (!dedup || grid.tile_of(x, y) == tid) {
                    out.push((a, r.global(local as EntryId)));
                }
            }
        }
    }
    out.sort_unstable();
    out
}

#[test]
fn a_pair_straddling_one_boundary_is_emitted_exactly_once() {
    // Two points either side of the x = 50 edge of a 2 × 2 grid, close
    // enough to join: both are replicated into tiles 0 and 1, so the raw
    // stream sees each cross pair twice and the filter must keep one.
    let mut t = PointTable::default();
    t.push(48.0, 20.0);
    t.push(52.0, 20.0);
    let seq = sequential_pairs(&t, 10.0);
    assert_eq!(seq.len(), 4, "both self pairs and both cross pairs");
    assert_eq!(tiled_pairs(&t, 10.0, 4, true), seq);
    // Without the rule the join is wrong — the cross pairs double. The
    // rule is load-bearing, not a formality.
    let raw = tiled_pairs(&t, 10.0, 4, false);
    assert_eq!(
        raw.len(),
        8,
        "all 4 pairs (self included) seen in both tiles"
    );
}

#[test]
fn a_pair_straddling_the_four_corner_tiles_is_emitted_exactly_once() {
    // Diagonal neighbours of the (50, 50) corner: each query region
    // covers all four tiles, so without the filter the cross pairs are
    // reported four times over.
    let mut t = PointTable::default();
    t.push(48.0, 48.0);
    t.push(52.0, 52.0);
    let seq = sequential_pairs(&t, 12.0);
    assert_eq!(seq.len(), 4);
    assert_eq!(tiled_pairs(&t, 12.0, 4, true), seq);
    let raw = tiled_pairs(&t, 12.0, 4, false);
    assert_eq!(raw.len(), 16, "every pair visible in all four tiles");
}

#[test]
fn a_point_exactly_on_a_tile_edge_is_owned_by_the_higher_tile_only() {
    // x = 50 sits exactly on the interior edge; the canonical-tile tie
    // goes to the higher-indexed tile (floor semantics), so only tile 1
    // may emit pairs that match it.
    let g = grid(4);
    let mut t = PointTable::default();
    let edge = t.push(50.0, 20.0);
    t.push(46.0, 20.0);
    assert_eq!(g.tile_of(50.0, 20.0), 1, "tie goes right");

    // Re-run the tiled join by hand, recording the emitting tile of every
    // pair that has the edge point on its reference side.
    let space = space();
    let mut replicas = Vec::new();
    replicate_by_extent(&t, &g, 10.0, &mut replicas);
    let mut emitters = Vec::new();
    for (_, p) in t.iter() {
        let region = Rect::centered_square(p, 10.0).clipped_to(&space);
        for tid in g.cover(&region) {
            let r = &replicas[tid];
            for local in 0..r.table.len() {
                let (x, y) = (r.table.xs()[local], r.table.ys()[local]);
                if region.contains_point(x, y)
                    && g.tile_of(x, y) == tid
                    && r.global(local as EntryId) == edge
                {
                    emitters.push(tid);
                }
            }
        }
    }
    assert_eq!(
        emitters,
        vec![1, 1],
        "both pairs referencing the edge point come from tile 1"
    );
    assert_eq!(tiled_pairs(&t, 10.0, 4, true), sequential_pairs(&t, 10.0));
}

#[test]
fn a_row_that_dies_vanishes_from_every_replica_set() {
    // The churn scenario: a row at the four-tile corner is replicated
    // everywhere, then tombstoned. The next partition must drop it from
    // all four replica sets — exactly as a sequential rebuild forgets it
    // — and the surviving join must still match brute force.
    let g = grid(4);
    let mut t = PointTable::default();
    t.push(48.0, 48.0);
    let doomed = t.push(50.0, 50.0);
    t.push(52.0, 52.0);

    let mut replicas = Vec::new();
    replicate_by_extent(&t, &g, 10.0, &mut replicas);
    let holders = replicas
        .iter()
        .filter(|r| r.to_global.contains(&doomed))
        .count();
    assert_eq!(holders, 4, "the corner row is replicated into every tile");

    assert!(t.remove(doomed));
    replicate_by_extent(&t, &g, 10.0, &mut replicas);
    for (tid, r) in replicas.iter().enumerate() {
        assert!(
            !r.to_global.contains(&doomed),
            "tombstoned row still replicated in tile {tid}"
        );
    }
    assert_eq!(tiled_pairs(&t, 10.0, 4, true), sequential_pairs(&t, 10.0));
}

#[test]
fn a_hotspot_tile_split_across_chunk_seams_loses_and_doubles_nothing() {
    // The mini-join scheduler's coverage contract: a tile whose querier
    // list outgrows MINI_JOIN_CHUNK is split into several chunks drained
    // by different workers, and pairs must still come out exactly once —
    // including pairs whose two queriers sit either side of a chunk seam
    // and pairs that straddle the x = 50 tile edge (so the reference-point
    // rule and the chunk decomposition are exercised together).
    let mut t = PointTable::default();
    // A dense block deep inside tile 0 of the 2 × 2 grid…
    for i in 0..120u32 {
        t.push(1.0 + (i % 40) as f32 * 1.1, 1.0 + (i / 40) as f32 * 1.1);
    }
    // …plus edge-hugging pairs either side of x = 50.
    for i in 0..10u32 {
        t.push(49.5, 2.0 + i as f32 * 4.0);
        t.push(50.5, 2.0 + i as f32 * 4.0);
    }
    let query_side = 5.0;
    // Precondition: tile 0's querier list (its 130 residents all query
    // their own tile) spans at least three mini-joins.
    assert!(
        t.len() > 2 * MINI_JOIN_CHUNK,
        "hotspot must straddle chunk seams"
    );

    let expect = sequential_pairs(&t, query_side);
    let expect_checksum = expect
        .iter()
        .fold(0u64, |acc, &(a, b)| fold_pair(acc, a, b));
    let queriers: Vec<EntryId> = t.iter().map(|(id, _)| id).collect();
    let proto = SimpleGrid::tuned(SIDE);
    for workers in [1usize, 2, 3] {
        let mut pool = TileIndexPool::default();
        tiled_index_build(
            &proto,
            &t,
            &space(),
            query_side,
            Tiling::Fixed(NonZeroUsize::new(4).unwrap()),
            NonZeroUsize::new(workers),
            &mut pool,
        );
        let (pairs, checksum) = tiled_index_query(&mut pool, &t, &queriers, &space(), query_side);
        assert_eq!(pairs, expect.len() as u64, "pool of {workers}");
        assert_eq!(checksum, expect_checksum, "pool of {workers}");
    }
}

#[test]
fn tiled_churn_run_matches_sequential_through_the_driver() {
    // End to end: the same churn workload (rows die and arrive every
    // tick) joined sequentially and under @tiles4 / @tiles5 must be bit
    // identical — including the tick where a dead row's replicas must
    // disappear mid-run.
    let params = WorkloadParams {
        num_points: 800,
        ticks: 4,
        space_side: 4_000.0,
        seed: 97,
        ..WorkloadParams::default()
    };
    let run = |exec: ExecMode| {
        let mut w = WorkloadSpec::parse("churn:uniform").unwrap().build(params);
        let mut grid = SimpleGrid::tuned(params.space_side);
        run_join(
            &mut *w,
            &mut grid,
            DriverConfig::new(params.ticks, 1).with_exec(exec),
        )
    };
    let seq = run(ExecMode::Sequential);
    for tiles in [4usize, 5] {
        let tiled = run(ExecMode::partitioned(tiles).unwrap());
        assert_eq!(tiled.checksum, seq.checksum, "@tiles{tiles}");
        assert_eq!(tiled.result_pairs, seq.result_pairs, "@tiles{tiles}");
        assert_eq!(tiled.removals, seq.removals, "@tiles{tiles}");
        assert_eq!(tiled.inserts, seq.inserts, "@tiles{tiles}");
    }
    // The same churn run through the pooled scheduler and the adaptive
    // tiling, which re-decides the grid from the live population every
    // tick while rows die and arrive.
    let pooled_modes = [
        ("@tiles4@par2", ExecMode::pooled(4, 2).unwrap()),
        ("@tiles5@par3", ExecMode::pooled(5, 3).unwrap()),
        ("@tilesauto@par2", ExecMode::adaptive_pooled(2).unwrap()),
    ];
    for (name, exec) in pooled_modes {
        let pooled = run(exec);
        assert_eq!(pooled.checksum, seq.checksum, "{name}");
        assert_eq!(pooled.result_pairs, seq.result_pairs, "{name}");
        assert_eq!(pooled.removals, seq.removals, "{name}");
        assert_eq!(pooled.inserts, seq.inserts, "{name}");
    }
}

/// A coordinate that frequently lands *exactly* on a tile edge of the
/// 2 × 2 (edge at 50) and 4 × 4 (edges at 25 / 50 / 75) grids, with
/// just-inside/just-outside neighbours and interior filler — the same
/// tie-heavy lattice idiom `proptest_simd.rs` uses for the SIMD filters.
fn arb_edge_coord() -> impl Strategy<Value = f32> {
    prop::sample::select(vec![
        0.0f32, 10.0, 25.0, 49.999, 50.0, 50.001, 63.0, 75.0, 100.0, 50.0, 25.0,
    ])
}

fn arb_points() -> impl Strategy<Value = Vec<(f32, f32)>> {
    prop::collection::vec((arb_edge_coord(), arb_edge_coord()), 0..24)
}

proptest! {
    #[test]
    fn tiled_join_with_dedup_equals_brute_force_on_the_edge_lattice(
        points in arb_points(),
        query_side in prop::sample::select(vec![0.0f32, 4.0, 14.0, 52.0, 240.0]),
        tiles in prop::sample::select(vec![1usize, 2, 4, 5, 16]),
    ) {
        // Sorted-Vec equality doubles as a uniqueness check: the ground
        // truth lists every pair exactly once, so a double emission (or a
        // drop) on any boundary tie breaks the comparison.
        let mut t = PointTable::default();
        for &(x, y) in &points {
            t.push(x, y);
        }
        // Tombstone a deterministic subset so dead replicas are exercised
        // on the same tie-heavy geometry.
        for i in (0..points.len()).step_by(5) {
            t.remove(i as EntryId);
        }
        prop_assert_eq!(
            tiled_pairs(&t, query_side, tiles, true),
            sequential_pairs(&t, query_side)
        );
    }
}
