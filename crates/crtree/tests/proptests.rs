//! Property-based tests for the CR-tree: QRMBR conservativeness on
//! arbitrary geometry and end-to-end agreement with a naive filter.

use proptest::prelude::*;
use sj_base::geom::Rect;
use sj_base::index::{ScanIndex, SpatialIndex};
use sj_base::table::PointTable;
use sj_crtree::{decompress, q_intersects, qmbr, qquery, quantize, CRTree};

const SIDE: f32 = 500.0;

fn arb_points() -> impl Strategy<Value = Vec<(f32, f32)>> {
    prop::collection::vec((0.0f32..=SIDE, 0.0f32..=SIDE), 0..300)
}

fn arb_rect_in(lo: f32, hi: f32) -> impl Strategy<Value = Rect> {
    (lo..hi, lo..hi, lo..hi, lo..hi)
        .prop_map(|(a, b, c, d)| Rect::new(a.min(c), b.min(d), a.max(c), b.max(d)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn tree_agrees_with_scan(
        points in arb_points(),
        fanout in 2usize..32,
        qx in 0.0f32..=SIDE, qy in 0.0f32..=SIDE, qw in 0.0f32..=250.0, qh in 0.0f32..=250.0,
    ) {
        let mut t = PointTable::default();
        for &(x, y) in &points {
            t.push(x, y);
        }
        let region = Rect::new(qx, qy, (qx + qw).min(SIDE), (qy + qh).min(SIDE));
        let mut tree = CRTree::new(fanout);
        tree.build(&t);
        let scan = ScanIndex::new();
        let mut got = Vec::new();
        tree.query(&t, &region, &mut got);
        got.sort_unstable();
        let mut expect = Vec::new();
        scan.query(&t, &region, &mut expect);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn decompression_is_conservative(refr in arb_rect_in(0.0, 1000.0), child in arb_rect_in(0.0, 1000.0)) {
        // Even children poking outside the reference MBR (cannot happen in
        // the tree, but the function must stay safe) decompress to a
        // rectangle covering their clamped projection.
        let clamped = Rect::new(
            child.x1.clamp(refr.x1, refr.x2),
            child.y1.clamp(refr.y1, refr.y2),
            child.x2.clamp(refr.x1, refr.x2),
            child.y2.clamp(refr.y1, refr.y2),
        );
        let d = decompress(&qmbr(&clamped, &refr), &refr);
        let eps = 1e-3 * (1.0 + refr.x2.abs().max(refr.y2.abs()));
        prop_assert!(d.x1 <= clamped.x1 + eps);
        prop_assert!(d.y1 <= clamped.y1 + eps);
        prop_assert!(d.x2 >= clamped.x2 - eps);
        prop_assert!(d.y2 >= clamped.y2 - eps);
    }

    #[test]
    fn quantized_overlap_never_misses(
        refr in arb_rect_in(0.0, 1000.0),
        a in arb_rect_in(0.0, 1000.0),
        b in arb_rect_in(0.0, 1000.0),
    ) {
        // For rectangles inside the reference MBR, real intersection
        // implies quantized intersection (no false negatives, ever).
        let clamp = |r: &Rect| Rect::new(
            r.x1.clamp(refr.x1, refr.x2),
            r.y1.clamp(refr.y1, refr.y2),
            r.x2.clamp(refr.x1, refr.x2),
            r.y2.clamp(refr.y1, refr.y2),
        );
        let (ca, cb) = (clamp(&a), clamp(&b));
        if ca.intersects(&cb) {
            prop_assert!(q_intersects(&qmbr(&ca, &refr), &qquery(&cb, &refr)));
        }
    }

    #[test]
    fn quantize_is_monotone_and_bounded(lo in 0.0f32..500.0, span in 0.1f32..500.0, a in 0.0f32..1.0, b in 0.0f32..1.0) {
        let hi = lo + span;
        let (va, vb) = (lo + a * span, lo + b * span);
        let (qa, qb) = (quantize(va, lo, hi), quantize(vb, lo, hi));
        if va <= vb {
            prop_assert!(qa <= qb);
        } else {
            prop_assert!(qb <= qa);
        }
    }
}
