//! Edge-case coverage for the hand-rolled JSON reader: escaped quotes,
//! CRLF whitespace, unicode escapes, and a generative escape/parse
//! round-trip. The happy paths live in `json_roundtrip.rs` against real
//! harness output; this file pins the lexical corners a writer rarely
//! exercises.

use proptest::collection::vec;
use proptest::prelude::*;
use proptest::sample::select;

use sj_bench::json::Json;

#[test]
fn escaped_quotes_and_backslashes() {
    let v = Json::parse(r#"{"k":"a\"b\\c"}"#).expect("escaped quote parses");
    assert_eq!(v.get("k").and_then(Json::as_str), Some("a\"b\\c"));
}

#[test]
fn escape_menu_resolves() {
    let v = Json::parse(r#"{"k":"\n\t\r\/\b\f"}"#).expect("all simple escapes parse");
    assert_eq!(v.get("k").and_then(Json::as_str), Some("\n\t\r/\u{8}\u{c}"));
}

#[test]
fn unicode_escapes_including_surrogate_pairs() {
    // A = A, é = LATIN SMALL LETTER E WITH ACUTE, and
    // 😀 decodes as a surrogate pair (GRINNING FACE).
    let v = Json::parse(r#"{"k":"\u0041\u00e9\ud83d\ude00"}"#).expect("unicode escapes parse");
    assert_eq!(v.get("k").and_then(Json::as_str), Some("A\u{e9}\u{1f600}"));
}

#[test]
fn crlf_whitespace_between_tokens() {
    let doc = "{\r\n  \"a\": 1,\r\n  \"b\": [true,\r\nfalse]\r\n}\r\n";
    let v = Json::parse(doc).expect("CRLF is ordinary whitespace");
    assert_eq!(v.get("a").and_then(Json::as_u64), Some(1));
    assert_eq!(
        v.get("b").and_then(Json::as_array).map(<[Json]>::len),
        Some(2)
    );
}

#[test]
fn rejects_unterminated_string() {
    assert!(Json::parse(r#"{"k":"abc"#).is_err());
}

#[test]
fn rejects_bare_control_character_in_string() {
    assert!(Json::parse("{\"k\":\"a\nb\"}").is_err());
}

#[test]
fn rejects_trailing_backslash_escape() {
    assert!(Json::parse(r#"{"k":"a\"#).is_err());
}

/// The escaping the repo's writers apply (quote, backslash, control
/// characters); everything else passes through verbatim.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

proptest! {
    #[test]
    fn escape_then_parse_round_trips(parts in vec(
        select(vec![
            "a", "\"", "\\", "\n", "\r\n", "\t", "é", "😀", "{", "}", ":", " ", "\u{1}",
        ]),
        0..16,
    )) {
        let original = parts.concat();
        let doc = format!("{{\"k\":\"{}\"}}", escape(&original));
        let v = Json::parse(&doc)
            .unwrap_or_else(|e| panic!("escaped doc must parse: {e}\n{doc:?}"));
        prop_assert_eq!(v.get("k").and_then(Json::as_str), Some(original.as_str()));
    }
}
