//! Mini parameter sweep over the refactored grid's bucket size and grid
//! granularity — Figure 5 at example scale. Shows why the *re-tuned*
//! optimum (larger bs, much larger cps) differs from the original
//! implementation's optimum.
//!
//! Run: `cargo run --release --example tune_grid`

use spatial_joins::prelude::*;

fn time_config(cfg: GridConfig, params: &WorkloadParams) -> f64 {
    let mut workload = UniformWorkload::new(*params);
    let mut grid = SimpleGrid::new(cfg, params.space_side);
    let stats = run_join(&mut workload, &mut grid, DriverConfig::new(4, 1));
    stats.avg_tick_seconds()
}

fn main() {
    let params = WorkloadParams {
        num_points: 20_000,
        ..WorkloadParams::default()
    };
    let bs_values = [4u32, 8, 16, 20, 32];
    let cps_values = [8u32, 16, 32, 64, 96];

    println!("avg seconds per tick, refactored grid (rows: bs, cols: cps)\n");
    print!("{:>6}", "bs\\cps");
    for cps in cps_values {
        print!("{cps:>9}");
    }
    println!();
    let mut best = (f64::INFINITY, 0u32, 0u32);
    for bs in bs_values {
        print!("{bs:>6}");
        for cps in cps_values {
            let cfg = GridConfig {
                cells_per_side: cps,
                bucket_size: bs,
                layout: Layout::Inline,
                query_algo: QueryAlgo::RangeScan,
            };
            let t = time_config(cfg, &params);
            if t < best.0 {
                best = (t, bs, cps);
            }
            print!("{t:>9.4}");
        }
        println!();
    }
    println!(
        "\nbest configuration at this scale: bs = {}, cps = {} ({:.4} s/tick)",
        best.1, best.2, best.0
    );
    println!("(the paper's full-scale optimum is bs = 20, cps = 64)");
}
