//! `bench_suite` — run the pinned trajectory matrix and emit the suite
//! document (`BENCH_<n>.json`).
//!
//! The matrix, seeds, populations, and tick counts are hard-coded in
//! [`sj_bench::suite`]; this binary just runs every cell in order and
//! assembles the schema-versioned document. Progress goes to stderr, the
//! document to stdout (or `--out FILE`), so
//! `cargo run --release --bin bench_suite > BENCH_7.json` is the whole
//! snapshot workflow.
//!
//! Run: `cargo run -p sj-bench --release --bin bench_suite
//! [--quick] [--out FILE] [--list]`
//!
//! `--quick` runs the same matrix at the CI smoke scale (fewer points and
//! ticks); [`bench_compare`](../bench_compare.rs) will refuse to diff its
//! timings against a full-scale baseline, so quick documents are for
//! schema checks, not committed baselines.

use std::io::Write as _;
use std::time::Instant;

use sj_bench::suite::{cell_matrix, document, run_cell};

fn usage() -> ! {
    eprintln!("usage: bench_suite [--quick] [--out FILE] [--list]");
    std::process::exit(2);
}

fn main() {
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut list = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--list" => list = true,
            "--out" => out = Some(args.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }

    let cells = cell_matrix();
    if list {
        for spec in &cells {
            println!("{}", spec.id());
        }
        return;
    }

    // Suite progress ETA, not a measured phase: cell timings come from
    // the driver's phase clocks.
    // sj-lint: allow(instant-outside-driver)
    let started = Instant::now();
    let mut results = Vec::with_capacity(cells.len());
    for (i, spec) in cells.iter().enumerate() {
        // Operator-facing progress line only.
        // sj-lint: allow(instant-outside-driver)
        let cell_started = Instant::now();
        let result = run_cell(spec, quick);
        eprintln!(
            "[{:>3}/{}] {:<55} {:>8.3}s",
            i + 1,
            cells.len(),
            spec.id(),
            cell_started.elapsed().as_secs_f64()
        );
        results.push(result);
    }
    eprintln!(
        "suite complete: {} cells in {:.1}s ({} mode)",
        results.len(),
        started.elapsed().as_secs_f64(),
        if quick { "quick" } else { "full" }
    );

    let doc = document(&results, quick);
    match out {
        Some(path) => std::fs::write(&path, doc).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        }),
        None => std::io::stdout()
            .write_all(doc.as_bytes())
            .expect("stdout write"),
    }
}
